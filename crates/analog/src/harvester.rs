//! Energy harvesting: the MP3-37 solar panel + BQ25570 power-management
//! model behind the paper's Table 4 (tag-data exchange times under
//! different lighting).

/// Lighting conditions from the paper's §3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Light {
    /// Indoor office lighting (paper: 500 lux).
    Indoor {
        /// Illuminance in lux.
        lux: f64,
    },
    /// Direct sunlight (paper: 1.04e5 lux).
    Outdoor {
        /// Illuminance in lux.
        lux: f64,
    },
}

impl Light {
    /// The paper's indoor operating point.
    pub fn paper_indoor() -> Self {
        Light::Indoor { lux: 500.0 }
    }

    /// The paper's outdoor operating point.
    pub fn paper_outdoor() -> Self {
        Light::Outdoor { lux: 1.04e5 }
    }
}

/// The MP3-37 panel + BQ25570 harvesting chain.
///
/// Indoor (fluorescent/LED) and outdoor (solar) spectra convert lux to
/// electrical power with different effective efficiencies; both
/// coefficients are calibrated so the paper's two measured charge times
/// (216.2 s at 500 lux, 0.78 s at 1.04e5 lux for 50 mJ) are reproduced.
#[derive(Clone, Copy, Debug)]
pub struct SolarHarvester {
    /// Electrical power per lux under indoor spectra, W/lux.
    pub indoor_w_per_lux: f64,
    /// Electrical power per lux under sunlight, W/lux.
    pub outdoor_w_per_lux: f64,
}

impl SolarHarvester {
    /// The calibrated MP3-37 model.
    pub fn mp3_37() -> Self {
        // 50 mJ / 216.2 s / 500 lux ; 50 mJ / 0.78 s / 1.04e5 lux.
        SolarHarvester {
            indoor_w_per_lux: 50e-3 / 216.2 / 500.0,
            outdoor_w_per_lux: 50e-3 / 0.78 / 1.04e5,
        }
    }

    /// Harvested electrical power, watts.
    pub fn power_w(&self, light: Light) -> f64 {
        match light {
            Light::Indoor { lux } => self.indoor_w_per_lux * lux,
            Light::Outdoor { lux } => self.outdoor_w_per_lux * lux,
        }
    }
}

/// The BQ25570 + storage-capacitor energy buffer (paper §3): charges the
/// capacitor to `v_high`, powers the load until `v_low`, then shuts down.
#[derive(Clone, Copy, Debug)]
pub struct EnergyBuffer {
    /// Storage capacitance, farads (paper: 0.01 F).
    pub capacitance: f64,
    /// Power-ready threshold, volts (paper: 4.1 V).
    pub v_high: f64,
    /// Shutdown threshold, volts (paper: 2.6 V).
    pub v_low: f64,
}

impl EnergyBuffer {
    /// The paper's buffer.
    pub fn paper() -> Self {
        EnergyBuffer { capacitance: 0.01, v_high: 4.1, v_low: 2.6 }
    }

    /// Usable energy per discharge round, joules:
    /// `C/2 · (v_high² − v_low²)` (paper: 50 mJ).
    pub fn usable_energy_j(&self) -> f64 {
        0.5 * self.capacitance * (self.v_high * self.v_high - self.v_low * self.v_low)
    }

    /// Seconds of operation per round for a load drawing `load_w` watts.
    pub fn runtime_s(&self, load_w: f64) -> f64 {
        assert!(load_w > 0.0);
        self.usable_energy_j() / load_w
    }

    /// Seconds to recharge one round from a harvester under `light`.
    pub fn recharge_s(&self, harvester: &SolarHarvester, light: Light) -> f64 {
        let p = harvester.power_w(light);
        assert!(p > 0.0, "no harvested power");
        self.usable_energy_j() / p
    }

    /// Duty cycle of operation: runtime / (runtime + recharge).
    pub fn duty(&self, harvester: &SolarHarvester, light: Light, load_w: f64) -> f64 {
        let run = self.runtime_s(load_w);
        run / (run + self.recharge_s(harvester, light))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_energy_is_50mj() {
        let e = EnergyBuffer::paper().usable_energy_j();
        assert!((e - 50.25e-3).abs() < 0.1e-3, "E {e}");
    }

    #[test]
    fn runtime_matches_paper() {
        // 50 mJ at 279.5 mW → 0.18 s (paper §3).
        let t = EnergyBuffer::paper().runtime_s(279.5e-3);
        assert!((t - 0.18).abs() < 0.003, "t {t}");
    }

    #[test]
    fn recharge_times_match_paper() {
        let h = SolarHarvester::mp3_37();
        let b = EnergyBuffer::paper();
        let indoor = b.recharge_s(&h, Light::paper_indoor());
        assert!((indoor - 216.2).abs() < 2.0, "indoor {indoor}");
        let outdoor = b.recharge_s(&h, Light::paper_outdoor());
        assert!((outdoor - 0.78).abs() < 0.02, "outdoor {outdoor}");
    }

    #[test]
    fn power_scales_linearly_with_lux() {
        let h = SolarHarvester::mp3_37();
        let p1 = h.power_w(Light::Indoor { lux: 500.0 });
        let p2 = h.power_w(Light::Indoor { lux: 1000.0 });
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duty_is_tiny_indoor_large_outdoor() {
        let h = SolarHarvester::mp3_37();
        let b = EnergyBuffer::paper();
        let load = 279.5e-3;
        let indoor = b.duty(&h, Light::paper_indoor(), load);
        let outdoor = b.duty(&h, Light::paper_outdoor(), load);
        assert!(indoor < 0.001, "indoor duty {indoor}");
        assert!(outdoor > 0.15, "outdoor duty {outdoor}");
    }
}
