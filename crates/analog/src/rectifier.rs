//! Behavioral envelope-detector (rectifier) models — the paper's §2.2.1.
//!
//! Three variants are modeled:
//!
//! * [`RectifierKind::Basic`] — single diode + RC (Fig. 3a). Output dead
//!   zone below the diode turn-on voltage.
//! * [`RectifierKind::Clamp`] — the paper's design (Fig. 3c): a clamp
//!   stage level-shifts the input so the full swing reaches the
//!   rectifying diode, with an RC tuned for 20 MHz basebands.
//! * [`RectifierKind::Wisp`] — a WISP-5-like reference tuned for
//!   40–160 kbps RFID basebands; its large time constant smears
//!   high-bandwidth signals (Fig. 4b).
//!
//! The model runs in the *envelope domain*: the input is the RF envelope
//! `e(t) = |x(t)|` in volts and the carrier only contributes ripple,
//! which is added explicitly (amplitude ∝ 1/(f_c·τ)).

use msc_dsp::rate::SampleRate;
use rand::Rng;

/// Which circuit to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RectifierKind {
    /// Single-diode rectifier (Fig. 3a).
    Basic,
    /// Clamp + tuned RC — the paper's high-bandwidth design (Fig. 3c).
    Clamp,
    /// WISP-style low-bandwidth reference.
    Wisp,
}

/// Rectifier circuit parameters.
#[derive(Clone, Copy, Debug)]
pub struct Rectifier {
    /// Circuit variant.
    pub kind: RectifierKind,
    /// Rectifying-diode turn-on voltage (Schottky ≈ 0.15–0.3 V).
    pub v_on: f64,
    /// Clamp-diode turn-on voltage (only used by [`RectifierKind::Clamp`]).
    pub v_clamp: f64,
    /// Discharge time constant τ = R1·C1, seconds.
    pub tau: f64,
    /// Charging time constant (diode + source impedance), seconds.
    pub tau_charge: f64,
    /// Carrier frequency, Hz (sets ripple amplitude).
    pub f_carrier: f64,
}

impl Rectifier {
    /// The paper's clamp rectifier: τ chosen per `1/f_c ≪ τ ≪ 1/f_b`
    /// with `f_c = 2.4 GHz`, `f_b = 20 MHz` (§2.2.1) → τ ≈ 12 ns.
    pub fn ours() -> Self {
        Rectifier {
            kind: RectifierKind::Clamp,
            v_on: 0.15,
            // Low-barrier Schottky at the microamp currents involved:
            // ~50 mV forward drop.
            v_clamp: 0.05,
            tau: 12e-9,
            tau_charge: 3e-9,
            f_carrier: 2.44e9,
        }
    }

    /// A plain single-diode rectifier with the same RC as [`Self::ours`].
    pub fn basic() -> Self {
        Rectifier { kind: RectifierKind::Basic, ..Rectifier::ours() }
    }

    /// WISP-like rectifier: τ sized for ≤160 kbps basebands (≈ 2 µs),
    /// which distorts 11 Mcps DSSS heavily.
    pub fn wisp() -> Self {
        Rectifier {
            kind: RectifierKind::Wisp,
            v_on: 0.15,
            v_clamp: 0.0,
            tau: 2e-6,
            tau_charge: 150e-9,
            f_carrier: 2.44e9,
        }
    }

    /// Effective voltage presented to the rectifying diode for an input
    /// envelope `e` (volts).
    fn drive(&self, e: f64) -> f64 {
        match self.kind {
            // Clamp roughly doubles the usable swing: the waveform rides
            // on −V_D1 instead of being centered, so the peak seen by the
            // rectifying diode is ≈ 2e − V_D1 (Fig. 4a).
            RectifierKind::Clamp => (2.0 * e - self.v_clamp).max(0.0),
            RectifierKind::Basic | RectifierKind::Wisp => e,
        }
    }

    /// Runs the rectifier over an envelope sequence at `rate`, returning
    /// the output voltage sequence. `rng` supplies ripple noise.
    pub fn run<R: Rng>(&self, rng: &mut R, envelope: &[f64], rate: SampleRate) -> Vec<f64> {
        let dt = rate.period();
        // Per-step smoothing coefficients.
        let a_charge = 1.0 - (-dt / self.tau_charge).exp();
        let a_dis = 1.0 - (-dt / self.tau).exp();
        // Ripple fraction of the output voltage.
        let ripple = (1.0 / (self.f_carrier * self.tau)).min(0.2);
        let mut v = 0.0f64;
        envelope
            .iter()
            .map(|&e| {
                let drive = self.drive(e.max(0.0));
                let target = (drive - self.v_on).max(0.0);
                if target > v {
                    v += (target - v) * a_charge;
                } else {
                    v -= v * a_dis;
                }
                let noise = v * ripple * rng.gen_range(-0.5..0.5);
                (v + noise).max(0.0)
            })
            .collect()
    }

    /// Maximum steady-state output for a constant input envelope `e`.
    pub fn steady_state(&self, e: f64) -> f64 {
        (self.drive(e) - self.v_on).max(0.0)
    }
}

/// Converts incident RF power (dBm) at a matched antenna (R = 50 Ω) into
/// the peak envelope voltage the rectifier sees.
pub fn dbm_to_envelope_volts(p_dbm: f64) -> f64 {
    let watts = 10f64.powf(p_dbm / 10.0) * 1e-3;
    (2.0 * watts * 50.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rate() -> SampleRate {
        SampleRate::mhz(20.0)
    }

    #[test]
    fn dbm_to_volts_known_points() {
        // -13 dBm (tag sensitivity) → ≈ 70 mV peak at 50 Ω.
        let v = dbm_to_envelope_volts(-13.0);
        assert!((v - 0.0708).abs() < 0.001, "v {v}");
        // 0 dBm → 316 mV.
        assert!((dbm_to_envelope_volts(0.0) - 0.3162).abs() < 0.001);
    }

    #[test]
    fn clamp_beats_basic_at_low_drive() {
        // Below the diode turn-on voltage the basic rectifier outputs
        // nothing; the clamp still produces signal (Fig. 4a).
        let e = 0.12; // volts, below v_on = 0.15
        assert_eq!(Rectifier::basic().steady_state(e), 0.0);
        assert!(Rectifier::ours().steady_state(e) > 0.0);
    }

    #[test]
    fn clamp_output_larger_everywhere() {
        for &e in &[0.1, 0.2, 0.5, 1.0] {
            assert!(Rectifier::ours().steady_state(e) >= Rectifier::basic().steady_state(e));
        }
    }

    #[test]
    fn tracks_fast_envelope_ours_but_not_wisp() {
        // A 1 MHz square envelope (like 11b chip structure): our
        // rectifier must follow the dips, WISP must smear them.
        let mut rng = StdRng::seed_from_u64(91);
        let n = 2000;
        let envelope: Vec<f64> =
            (0..n).map(|i| if (i / 10) % 2 == 0 { 0.5 } else { 0.15 }).collect();
        let ours = Rectifier::ours().run(&mut rng, &envelope, rate());
        let wisp = Rectifier::wisp().run(&mut rng, &envelope, rate());
        let swing = |v: &[f64]| {
            let hi = v[1000..].iter().cloned().fold(0.0f64, f64::max);
            let lo = v[1000..].iter().cloned().fold(f64::INFINITY, f64::min);
            hi - lo
        };
        let ours_swing = swing(&ours);
        let wisp_swing = swing(&wisp);
        assert!(
            ours_swing > 5.0 * wisp_swing,
            "ours {ours_swing} wisp {wisp_swing}: WISP must smear the 1 MHz structure"
        );
    }

    #[test]
    fn discharge_follows_tau() {
        // Drive to steady state then drop the input: output must decay
        // roughly exponentially with τ.
        let mut rng = StdRng::seed_from_u64(92);
        let mut r = Rectifier::wisp();
        r.f_carrier = 1e12; // suppress ripple for this numeric check
        let mut envelope = vec![1.0; 500];
        envelope.extend(vec![0.0; 500]);
        let out = r.run(&mut rng, &envelope, rate());
        let v0 = out[499];
        // After tau seconds (= 40 samples at 20 Msps for τ = 2 µs), the
        // voltage should be near v0/e.
        let v_tau = out[499 + 40];
        assert!((v_tau / v0 - (-1.0f64).exp()).abs() < 0.05, "ratio {}", v_tau / v0);
    }

    #[test]
    fn output_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(93);
        let envelope: Vec<f64> = (0..500).map(|i| ((i as f64) * 0.1).sin().abs() * 0.3).collect();
        for r in [Rectifier::ours(), Rectifier::basic(), Rectifier::wisp()] {
            assert!(r.run(&mut rng, &envelope, rate()).iter().all(|&v| v >= 0.0));
        }
    }
}
