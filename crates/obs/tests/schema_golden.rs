//! Golden-file guard for every JSON artifact the workspace exports.
//!
//! Renders each export format from fixed inputs and compares the result
//! against `tests/golden/schema_v<N>.txt`, where `N` is
//! [`msc_obs::SCHEMA_VERSION`]. Changing any serialization without
//! bumping the version fails here (the golden no longer matches);
//! bumping the version also fails (no golden for the new version
//! exists) until the snapshot is regenerated — so a version bump and a
//! format change can only land together.
//!
//! Regenerate after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test -p msc-obs --test schema_golden`

use msc_obs::flight::{Dump, TrialRecord};
use msc_obs::metrics::{buckets, Key, Registry};
use msc_obs::profile::Profile;

fn key(name: &'static str, protocol: &'static str, stage: &'static str) -> Key {
    Key { name, experiment: "golden".to_string(), protocol, stage }
}

/// Deterministic sample of every export: no clocks, no host state.
fn fingerprint() -> String {
    let mut out = String::new();

    // metrics.jsonl / metrics.csv — a private registry with one of each
    // metric kind, fixed values.
    let reg = Registry::new();
    reg.counter_add(key("pipe.packets", "BLE", "decode"), 3);
    reg.gauge_set(key("id.accuracy", "ZigBee", "ordered"), 0.976);
    reg.hist_observe(key("pipe.stage_us", "BLE", "decode"), 12.5, buckets::LATENCY_US);
    let snap = reg.snapshot();
    out.push_str("== metrics.jsonl ==\n");
    out.push_str(&msc_obs::export::to_jsonl(&snap));
    out.push_str("== metrics.csv ==\n");
    out.push_str(&msc_obs::export::to_csv(&snap));

    // flight bundle — fixed dump.
    let dump = Dump {
        reason: "decode_fail".to_string(),
        record: TrialRecord {
            experiment: "fig13".to_string(),
            cell: "los/BLE/32".to_string(),
            index: 5,
            seed: 42,
            derived_seed: 12345,
            protocol: "BLE",
            stages: vec![("modulate", 10.0), ("decode", 300.5)],
            scores: vec![("tag_errors", 7.0), ("tag_ber", 0.4375)],
            verdict: "decode_fail".to_string(),
        },
    };
    out.push_str("== flight bundle ==\n");
    out.push_str(&msc_obs::flight::bundle_to_json(&dump, 24));

    // profile.json / profile.folded — an empty profile (tree contents
    // are timing-dependent; the envelope and key set are not).
    let profile = Profile { nodes: Vec::new(), threads: Vec::new() };
    out.push_str("== profile.json ==\n");
    out.push_str(&profile.to_json(&[("wavecache.hits".to_string(), 9.0)]));
    out.push_str("== profile.folded ==\n");
    out.push_str(&profile.to_folded());

    out
}

#[test]
fn exports_match_golden_for_this_schema_version() {
    let got = fingerprint();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("schema_v{}.txt", msc_obs::SCHEMA_VERSION));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden for schema v{} ({e}). If you bumped SCHEMA_VERSION \
             intentionally, regenerate with UPDATE_GOLDEN=1 cargo test -p msc-obs \
             --test schema_golden",
            msc_obs::SCHEMA_VERSION
        )
    });
    assert_eq!(
        got, want,
        "an export format changed without a SCHEMA_VERSION bump — bump \
         msc_obs::SCHEMA_VERSION and regenerate the golden (UPDATE_GOLDEN=1)"
    );
}

#[test]
fn every_export_declares_the_schema_version() {
    let fp = fingerprint();
    // jsonl meta line (compact) + flight bundle + profile.json (csv and
    // folded are headerless data formats).
    let n = fp.matches(&format!("\"schema_version\": {}", msc_obs::SCHEMA_VERSION)).count()
        + fp.matches(&format!("\"schema_version\":{}", msc_obs::SCHEMA_VERSION)).count();
    assert!(n >= 3, "{n} declarations in:\n{fp}");
}
