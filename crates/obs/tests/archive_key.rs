//! The archive key's determinism contract: the content address of a run
//! is a pure function of (experiment, seed, git rev, result-affecting
//! knobs) — and of nothing else. In particular the worker-pool size
//! must never reach the key: reports are byte-identical at any thread
//! count, so runs differing only in `--threads` are the same result and
//! must collide in the archive.

use msc_obs::archive::{config_hash, RunKey};

/// The exact config parts the `paper` harness feeds the hash.
fn harness_config(n: usize, full: bool, perturb_db: f64) -> Vec<(&'static str, String)> {
    vec![
        ("n", n.to_string()),
        ("full", full.to_string()),
        ("perturb_margin_db", format!("{perturb_db}")),
    ]
}

#[test]
fn key_is_thread_count_independent() {
    // Simulate three runs of the same experiment at 1/4/8 worker
    // threads: the config parts contain no thread knob, so the keys are
    // identical and the archive stores exactly one run.
    let keys: Vec<RunKey> = [1usize, 4, 8]
        .iter()
        .map(|_threads| RunKey::new("fig13", 42, "deadbeef", &harness_config(12, false, 0.0)))
        .collect();
    assert_eq!(keys[0], keys[1]);
    assert_eq!(keys[0], keys[2]);
    assert_eq!(keys[0].file_stem(), keys[2].file_stem());
}

#[test]
fn every_result_affecting_knob_changes_the_key() {
    let base = RunKey::new("fig13", 42, "deadbeef", &harness_config(12, false, 0.0));
    let other_seed = RunKey::new("fig13", 43, "deadbeef", &harness_config(12, false, 0.0));
    let other_rev = RunKey::new("fig13", 42, "cafecafe", &harness_config(12, false, 0.0));
    let other_n = RunKey::new("fig13", 42, "deadbeef", &harness_config(60, false, 0.0));
    let other_full = RunKey::new("fig13", 42, "deadbeef", &harness_config(12, true, 0.0));
    let perturbed = RunKey::new("fig13", 42, "deadbeef", &harness_config(12, false, 6.0));
    let other_exp = RunKey::new("fig14", 42, "deadbeef", &harness_config(12, false, 0.0));

    for (what, key) in [
        ("seed", &other_seed),
        ("git_rev", &other_rev),
        ("n", &other_n),
        ("full", &other_full),
        ("perturb_margin_db", &perturbed),
        ("experiment", &other_exp),
    ] {
        assert_ne!(&base, key, "changing {what} must change the key");
        assert_ne!(base.file_stem(), key.file_stem(), "changing {what} must change the stem");
    }
    // Sweep knobs alter the config hash specifically (not just the key
    // tuple) for n / full / perturb changes.
    assert_ne!(base.config_hash, other_n.config_hash);
    assert_ne!(base.config_hash, other_full.config_hash);
    assert_ne!(base.config_hash, perturbed.config_hash);
    // Seed and rev live outside the config hash.
    assert_eq!(base.config_hash, other_seed.config_hash);
    assert_eq!(base.config_hash, other_rev.config_hash);
}

#[test]
fn config_hash_is_order_insensitive_but_value_sensitive() {
    let a = config_hash(&[("n", "12".into()), ("full", "false".into())]);
    let b = config_hash(&[("full", "false".into()), ("n", "12".into())]);
    assert_eq!(a, b, "part order must not matter");
    let c = config_hash(&[("n", "13".into()), ("full", "false".into())]);
    assert_ne!(a, c, "values must matter");
    // Key/value boundaries are unambiguous: ("ab", "c") != ("a", "bc").
    let d = config_hash(&[("ab", "c".into())]);
    let e = config_hash(&[("a", "bc".into())]);
    assert_ne!(d, e);
}
