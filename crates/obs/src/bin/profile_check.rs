//! CI helper: asserts a `paper --profile` output pair is non-empty and
//! self-consistent.
//!
//! Usage: `profile_check <profile.json> <profile.folded>`
//!
//! Checks:
//! * the folded file has at least one `path value` line, every line is
//!   well-formed, and the values are non-negative integers;
//! * the JSON parses, carries the current schema version, and its root
//!   node's inclusive time is ≥ the sum of its direct children
//!   (wall-clock above fork points is never over-attributed);
//! * `attributed_frac` is within `[0, 1]`.
//!
//! Exits 0 on success, 1 with a message on any violation.

use msc_obs::export::parse_json;
use std::process::ExitCode;

fn check(json_path: &str, folded_path: &str) -> Result<(), String> {
    let folded =
        std::fs::read_to_string(folded_path).map_err(|e| format!("read {folded_path}: {e}"))?;
    let mut lines = 0usize;
    for line in folded.lines() {
        let (path, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("malformed folded line: {line:?}"))?;
        if path.is_empty() || path.split(';').any(str::is_empty) {
            return Err(format!("empty stack segment in folded line: {line:?}"));
        }
        value.parse::<u64>().map_err(|_| format!("non-integer folded value in line: {line:?}"))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("folded output is empty".to_string());
    }

    let body = std::fs::read_to_string(json_path).map_err(|e| format!("read {json_path}: {e}"))?;
    let json = parse_json(&body).map_err(|e| format!("parse {json_path}: {e}"))?;
    let version = json
        .get("schema_version")
        .and_then(|v| v.as_f64())
        .ok_or("profile JSON missing schema_version")? as u32;
    if version != msc_obs::SCHEMA_VERSION {
        return Err(format!("schema_version {version} != expected {}", msc_obs::SCHEMA_VERSION));
    }
    let frac = json
        .get("attributed_frac")
        .and_then(|v| v.as_f64())
        .ok_or("profile JSON missing attributed_frac")?;
    if !(0.0..=1.0).contains(&frac) {
        return Err(format!("attributed_frac {frac} outside [0, 1]"));
    }
    let nodes = json.get("nodes").and_then(|v| v.as_arr()).ok_or("profile JSON missing nodes")?;
    if nodes.is_empty() {
        return Err("profile JSON has no nodes".to_string());
    }
    // Root = largest depth-0 inclusive; its children are the depth-1
    // nodes that directly follow it (nodes are in depth-first order).
    let mut root: Option<(usize, f64)> = None;
    for (i, node) in nodes.iter().enumerate() {
        let depth = node.get("depth").and_then(|v| v.as_f64()).unwrap_or(-1.0);
        let incl = node.get("incl_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if depth == 0.0 && root.map(|(_, r)| incl > r).unwrap_or(true) {
            root = Some((i, incl));
        }
    }
    let (root_idx, root_incl) = root.ok_or("no depth-0 node in profile")?;
    let mut child_sum = 0.0;
    for node in &nodes[root_idx + 1..] {
        let depth = node.get("depth").and_then(|v| v.as_f64());
        if depth == Some(1.0) {
            child_sum += node.get("incl_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
        } else if depth == Some(0.0) {
            break;
        }
    }
    // 1% slack covers clock-read jitter between parent and child frames.
    if root_incl < child_sum * 0.99 {
        return Err(format!(
            "root inclusive {root_incl:.1} µs < sum of children {child_sum:.1} µs"
        ));
    }
    println!(
        "profile_check ok: {lines} folded lines, root {:.1} ms, children {:.1} ms, attributed {:.1}%",
        root_incl / 1e3,
        child_sum / 1e3,
        frac * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [json_path, folded_path] = args.as_slice() else {
        eprintln!("usage: profile_check <profile.json> <profile.folded>");
        return ExitCode::from(2);
    };
    match check(json_path, folded_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("profile_check FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
