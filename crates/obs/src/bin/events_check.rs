//! CI helper: validates a `paper --events` JSONL stream read from
//! stdin (or a file argument).
//!
//! Usage: `paper fleet --events - | events_check` or
//! `events_check <events.jsonl>`
//!
//! Checks:
//! * every line parses as a JSON object;
//! * every line carries the current `schema_version`, a `kind`, and a
//!   `wall` object (the volatile suffix [`strip_volatile`] removes);
//! * `seq` is strictly increasing across the stream;
//! * the stream opens with `run_start` and closes with `run_end`, and
//!   `run_end` carries the deterministic totals (`cells`, `trials`,
//!   `events_dropped`);
//! * stripping the volatile suffix leaves valid JSON.
//!
//! Exits 0 with a per-kind summary on success, 1 with a message on any
//! violation.
//!
//! [`strip_volatile`]: msc_obs::events::strip_volatile

use msc_obs::events::strip_volatile;
use msc_obs::export::parse_json;
use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

fn check(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    let mut first_kind = String::new();
    let mut last_kind = String::new();
    let mut last_line = String::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = parse_json(line).map_err(|e| format!("line {n}: {e}"))?;
        let version =
            v.get("schema_version")
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("line {n}: missing schema_version"))? as u32;
        if version != msc_obs::SCHEMA_VERSION {
            return Err(format!(
                "line {n}: schema_version {version} != {}",
                msc_obs::SCHEMA_VERSION
            ));
        }
        let seq =
            v.get("seq").and_then(|x| x.as_f64()).ok_or_else(|| format!("line {n}: missing seq"))?
                as u64;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {n}: seq {seq} not strictly above {prev}"));
            }
        }
        last_seq = Some(seq);
        let kind = v
            .get("kind")
            .and_then(|x| x.as_str())
            .filter(|k| !k.is_empty())
            .ok_or_else(|| format!("line {n}: missing kind"))?;
        v.get("wall")
            .and_then(|w| w.get("t_us"))
            .ok_or_else(|| format!("line {n}: missing wall.t_us"))?;
        parse_json(&strip_volatile(line))
            .map_err(|e| format!("line {n}: stripped form is not valid JSON: {e}"))?;
        if first_kind.is_empty() {
            first_kind = kind.to_string();
        }
        last_kind = kind.to_string();
        last_line = line.to_string();
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
    }
    if last_seq.is_none() {
        return Err("event stream is empty".to_string());
    }
    if first_kind != "run_start" {
        return Err(format!("stream opens with {first_kind:?}, expected \"run_start\""));
    }
    if last_kind != "run_end" {
        return Err(format!("stream closes with {last_kind:?}, expected \"run_end\""));
    }
    let end = parse_json(&last_line).expect("already parsed");
    for field in ["cells", "trials", "events_dropped"] {
        if end.get(field).and_then(|x| x.as_f64()).is_none() {
            return Err(format!("run_end missing total {field:?}"));
        }
    }
    Ok(kinds)
}

fn main() -> ExitCode {
    let mut text = String::new();
    let read = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}")),
        None => std::io::stdin()
            .read_to_string(&mut text)
            .map(|_| std::mem::take(&mut text))
            .map_err(|e| format!("read stdin: {e}")),
    };
    let text = match read {
        Ok(t) => t,
        Err(e) => {
            eprintln!("events_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(kinds) => {
            let total: u64 = kinds.values().sum();
            let summary: Vec<String> =
                kinds.iter().map(|(k, c)| format!("{k}\u{00d7}{c}")).collect();
            eprintln!("events_check: {total} event(s) OK ({})", summary.join(", "));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("events_check: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
