//! Span profiler: aggregates trace spans and stage timings into a
//! call-tree profile.
//!
//! When profiling is enabled ([`enable`]) every [`crate::span!`] and
//! every [`crate::metrics::time_stage`] call opens a *frame* on a
//! per-thread call tree. Frames with the same `(parent, name)` pair are
//! merged, so the tree stays small no matter how many trials run: each
//! node accumulates inclusive wall-clock and a call count. When a
//! thread finishes (or [`take`] is called) its local tree is merged
//! into a process-global tree, preserving paths, and the result can be
//! rendered as a folded-stack file (`profile.folded`, one
//! `a;b;c <exclusive_us>` line per node — the flamegraph input format)
//! or a JSON summary.
//!
//! ## Threads, forks, and the wall-vs-CPU convention
//!
//! Frames nest per-thread, so within one thread `inclusive(parent) ≥
//! Σ inclusive(children)` holds by construction. When the `msc-par`
//! pool fans out, each worker adopts the spawning thread's open path
//! (captured via [`fork_context`]) and roots a `par.worker` frame under
//! it. Below such a fork point the tree therefore measures *CPU time
//! summed across workers*, which can exceed the fork frame's wall
//! clock; the pool compensates by also recording the workers' combined
//! *idle* time (`par.idle`) so wall-clock attribution stays complete.
//! Everything above the fork — including the root — remains plain
//! wall-clock and keeps the parent ≥ children invariant.
//!
//! Profiling never touches RNG streams or results: it only reads
//! clocks, so reports are byte-identical with profiling on or off.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether the profiler is collecting (the frame fast path).
static PROFILE_ON: AtomicBool = AtomicBool::new(false);

/// Starts collecting frames process-wide.
pub fn enable() {
    PROFILE_ON.store(true, Ordering::Release);
}

/// Stops collecting frames. Already-collected data stays until
/// [`take`] or [`reset`].
pub fn disable() {
    PROFILE_ON.store(false, Ordering::Release);
}

/// The frame fast path: true when the profiler is collecting.
#[inline(always)]
pub fn enabled() -> bool {
    PROFILE_ON.load(Ordering::Relaxed)
}

const NO_PARENT: usize = usize::MAX;

struct LocalNode {
    name: &'static str,
    parent: usize,
    incl_us: f64,
    calls: u64,
}

/// One thread's private call tree. Nodes are created parent-first, so
/// index order is a valid topological order for merging.
struct ThreadTree {
    label: String,
    nodes: Vec<LocalNode>,
    lookup: HashMap<(usize, &'static str), usize>,
    stack: Vec<(usize, Instant)>,
    /// Parent for depth-0 frames: `NO_PARENT`, or the adopted fork
    /// path's tip on pool workers.
    base: usize,
    /// Wall-clock accumulated by depth-0 frames (thread busy time).
    top_us: f64,
}

impl ThreadTree {
    fn new(label: String) -> Self {
        ThreadTree {
            label,
            nodes: Vec::new(),
            lookup: HashMap::new(),
            stack: Vec::new(),
            base: NO_PARENT,
            top_us: 0.0,
        }
    }

    fn node_under(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&i) = self.lookup.get(&(parent, name)) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(LocalNode { name, parent, incl_us: 0.0, calls: 0 });
        self.lookup.insert((parent, name), i);
        i
    }

    fn cur_parent(&self) -> usize {
        self.stack.last().map(|&(i, _)| i).unwrap_or(self.base)
    }

    fn enter(&mut self, name: &'static str) {
        let parent = self.cur_parent();
        let node = self.node_under(parent, name);
        self.stack.push((node, Instant::now()));
    }

    fn exit(&mut self) {
        if let Some((node, t0)) = self.stack.pop() {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            self.nodes[node].incl_us += us;
            self.nodes[node].calls += 1;
            if self.stack.is_empty() {
                self.top_us += us;
            }
        }
    }

    /// The dotted path of the innermost open frame (empty when idle).
    fn open_path(&self) -> Vec<&'static str> {
        let mut path = Vec::new();
        let mut node = self.cur_parent();
        while node != NO_PARENT {
            path.push(self.nodes[node].name);
            node = self.nodes[node].parent;
        }
        path.reverse();
        path
    }

    /// Re-roots this thread's depth-0 frames under `path` (fork
    /// adoption on pool workers).
    fn adopt(&mut self, path: &[&'static str]) {
        debug_assert!(self.stack.is_empty(), "adopt with open frames");
        let mut parent = NO_PARENT;
        for &name in path {
            parent = self.node_under(parent, name);
        }
        self.base = parent;
    }
}

/// Guard for thread-local trees: merges into the global tree when the
/// thread exits so no frames are lost.
struct TreeCell(Option<Box<ThreadTree>>);

impl Drop for TreeCell {
    fn drop(&mut self) {
        if let Some(tree) = self.0.take() {
            merge_tree(&tree);
        }
    }
}

thread_local! {
    static TREE: RefCell<TreeCell> = const { RefCell::new(TreeCell(None)) };
}

fn with_tree<R>(f: impl FnOnce(&mut ThreadTree) -> R) -> R {
    TREE.with(|cell| {
        let mut cell = cell.borrow_mut();
        if cell.0.is_none() {
            let label = std::thread::current().name().unwrap_or("thread").to_string();
            cell.0 = Some(Box::new(ThreadTree::new(label)));
        }
        f(cell.0.as_mut().unwrap())
    })
}

#[derive(Clone)]
struct MergedNode {
    name: &'static str,
    parent: usize,
    incl_us: f64,
    calls: u64,
}

#[derive(Default)]
struct Merged {
    nodes: Vec<MergedNode>,
    lookup: HashMap<(usize, &'static str), usize>,
    /// Per-thread-label (busy_us, frame count), summed across threads
    /// sharing a label (pool workers are re-created per call).
    threads: std::collections::BTreeMap<String, (f64, u64)>,
}

impl Merged {
    fn node_under(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&i) = self.lookup.get(&(parent, name)) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(MergedNode { name, parent, incl_us: 0.0, calls: 0 });
        self.lookup.insert((parent, name), i);
        i
    }
}

fn merged() -> &'static Mutex<Merged> {
    static MERGED: OnceLock<Mutex<Merged>> = OnceLock::new();
    MERGED.get_or_init(|| Mutex::new(Merged::default()))
}

fn merge_tree(tree: &ThreadTree) {
    if tree.nodes.is_empty() {
        return;
    }
    let mut global = merged().lock().unwrap();
    // Local index order is parent-first, so the remap is one pass.
    let mut remap = vec![0usize; tree.nodes.len()];
    for (i, node) in tree.nodes.iter().enumerate() {
        let parent = if node.parent == NO_PARENT { NO_PARENT } else { remap[node.parent] };
        let gi = global.node_under(parent, node.name);
        global.nodes[gi].incl_us += node.incl_us;
        global.nodes[gi].calls += node.calls;
        remap[i] = gi;
    }
    let frames: u64 = tree.nodes.iter().map(|n| n.calls).sum();
    let entry = global.threads.entry(tree.label.clone()).or_insert((0.0, 0));
    entry.0 += tree.top_us;
    entry.1 += frames;
}

/// Opens a frame on the current thread's tree (span/stage hook).
#[inline]
pub(crate) fn enter_frame(name: &'static str) {
    with_tree(|t| t.enter(name));
}

/// Closes the innermost open frame on the current thread.
#[inline]
pub(crate) fn exit_frame() {
    with_tree(|t| t.exit());
}

/// RAII frame: the explicit-scope counterpart of [`crate::span!`] for
/// call sites that want profiling without trace fields.
pub struct ProfScope(bool);

/// Opens a named profiler frame, closed when the guard drops. One
/// relaxed atomic load when profiling is disabled.
pub fn scope(name: &'static str) -> ProfScope {
    if enabled() {
        enter_frame(name);
        ProfScope(true)
    } else {
        ProfScope(false)
    }
}

impl Drop for ProfScope {
    fn drop(&mut self) {
        if self.0 {
            exit_frame();
        }
    }
}

/// The spawning thread's open frame path, captured just before a pool
/// fan-out so workers can root their frames under it.
pub struct ForkContext {
    path: Option<Vec<&'static str>>,
}

/// Captures the current thread's open path (`None` when profiling is
/// off, making every downstream hook free).
pub fn fork_context() -> ForkContext {
    if enabled() {
        ForkContext { path: Some(with_tree(|t| t.open_path())) }
    } else {
        ForkContext { path: None }
    }
}

/// Worker-side guard: adopts the fork path and opens a `par.worker`
/// frame for the worker's whole lifetime.
pub struct WorkerScope(bool);

/// Roots the current (worker) thread's tree under the fork path and
/// opens its `par.worker` frame.
pub fn worker_scope(ctx: &ForkContext) -> WorkerScope {
    match &ctx.path {
        Some(path) => {
            with_tree(|t| {
                t.adopt(path);
                t.enter("par.worker");
            });
            WorkerScope(true)
        }
        None => WorkerScope(false),
    }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        if self.0 {
            with_tree(|t| t.exit());
            // Merge eagerly: thread-local destructors can run after
            // `join` returns, so relying on them would race with the
            // spawning thread's `take()`.
            TREE.with(|cell| {
                if let Some(tree) = cell.borrow_mut().0.take() {
                    merge_tree(&tree);
                }
            });
        }
    }
}

/// Records an externally-measured duration as a child of the fork
/// path (the pool uses this for aggregate `par.idle` / `par.claim`
/// time that no single frame covers).
pub fn record_external(ctx: &ForkContext, name: &'static str, us: f64) {
    let Some(path) = &ctx.path else { return };
    let mut global = merged().lock().unwrap();
    let mut parent = NO_PARENT;
    for &seg in path {
        parent = global.node_under(parent, seg);
    }
    let node = global.node_under(parent, name);
    global.nodes[node].incl_us += us;
    global.nodes[node].calls += 1;
}

/// One node of a finished [`Profile`], in depth-first order.
pub struct ProfileNode {
    /// Semicolon-joined path from the root (`paper.run;fig7;par.run`).
    pub path: String,
    /// This node's own frame name.
    pub name: &'static str,
    /// Depth in the tree (roots are 0).
    pub depth: usize,
    /// Index of the parent node in [`Profile::nodes`], if any.
    pub parent: Option<usize>,
    /// Inclusive wall-clock (CPU-summed below fork points), µs.
    pub incl_us: f64,
    /// Exclusive time: inclusive minus children's inclusive, µs.
    pub excl_us: f64,
    /// Number of frames merged into this node.
    pub calls: u64,
}

/// Per-thread totals of a finished [`Profile`].
pub struct ThreadStat {
    /// Thread name (`main`, `par-0`, …); pool workers with the same
    /// name are summed across calls.
    pub label: String,
    /// Wall-clock covered by the thread's top-level frames, µs.
    pub busy_us: f64,
    /// Total frames the thread recorded.
    pub frames: u64,
}

/// A merged, finished profile: the call tree plus per-thread totals.
pub struct Profile {
    /// Call-tree nodes in depth-first order (children follow parents).
    pub nodes: Vec<ProfileNode>,
    /// Per-thread busy time and frame counts.
    pub threads: Vec<ThreadStat>,
}

/// Flushes the current thread's tree and returns the merged profile,
/// resetting the collector. Call from the thread that ran the
/// top-level scopes, after all pool work has joined.
pub fn take() -> Profile {
    TREE.with(|cell| {
        if let Some(tree) = cell.borrow_mut().0.take() {
            merge_tree(&tree);
        }
    });
    let mut global = merged().lock().unwrap();
    let snapshot = build(&global);
    *global = Merged::default();
    snapshot
}

/// Discards all collected frames (current thread + global).
pub fn reset() {
    TREE.with(|cell| {
        cell.borrow_mut().0 = None;
    });
    *merged().lock().unwrap() = Merged::default();
}

fn build(merged: &Merged) -> Profile {
    let n = merged.nodes.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (i, node) in merged.nodes.iter().enumerate() {
        if node.parent == NO_PARENT {
            roots.push(i);
        } else {
            children[node.parent].push(i);
        }
    }
    let mut child_sum = vec![0.0f64; n];
    for node in &merged.nodes {
        if node.parent != NO_PARENT {
            child_sum[node.parent] += node.incl_us;
        }
    }

    let mut nodes: Vec<ProfileNode> = Vec::with_capacity(n);
    // (merged index, depth, parent index in output) — creation order
    // within a sibling list keeps first-opened frames first.
    let mut stack: Vec<(usize, usize, Option<usize>)> =
        roots.iter().rev().map(|&r| (r, 0, None)).collect();
    while let Some((i, depth, parent)) = stack.pop() {
        let node = &merged.nodes[i];
        let path = match parent {
            Some(p) => format!("{};{}", nodes[p].path, node.name),
            None => node.name.to_string(),
        };
        let out_idx = nodes.len();
        nodes.push(ProfileNode {
            path,
            name: node.name,
            depth,
            parent,
            incl_us: node.incl_us,
            excl_us: (node.incl_us - child_sum[i]).max(0.0),
            calls: node.calls,
        });
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1, Some(out_idx)));
        }
    }

    let threads = merged
        .threads
        .iter()
        .map(|(label, &(busy_us, frames))| ThreadStat { label: label.clone(), busy_us, frames })
        .collect();
    Profile { nodes, threads }
}

impl Profile {
    /// The dominant root node (largest inclusive time at depth 0).
    pub fn root(&self) -> Option<&ProfileNode> {
        self.nodes.iter().filter(|n| n.depth == 0).max_by(|a, b| a.incl_us.total_cmp(&b.incl_us))
    }

    /// Summed inclusive time of the root's direct children, µs.
    pub fn root_child_sum_us(&self) -> f64 {
        let Some(root) = self.root() else { return 0.0 };
        let root_idx = self.nodes.iter().position(|n| std::ptr::eq(n, root)).unwrap();
        self.nodes.iter().filter(|n| n.parent == Some(root_idx)).map(|n| n.incl_us).sum()
    }

    /// Fraction of the root's wall-clock attributed to named child
    /// stages (the `paper all --profile` ≥95% acceptance number).
    pub fn attributed_frac(&self) -> f64 {
        match self.root() {
            Some(root) if root.incl_us > 0.0 => (self.root_child_sum_us() / root.incl_us).min(1.0),
            _ => 0.0,
        }
    }

    /// Renders the flamegraph folded-stack form: one
    /// `path;seg;… <exclusive_us>` line per node. Roots are always
    /// emitted (even at 0 µs) so a valid profile is never empty.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let us = node.excl_us.round() as u64;
            if us == 0 && node.depth != 0 {
                continue;
            }
            out.push_str(&node.path);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the JSON summary. `counters` carries flat name/value
    /// pairs surfaced alongside the tree (cache hit counts, pool
    /// totals); they are emitted under `"counters"`.
    pub fn to_json(&self, counters: &[(String, f64)]) -> String {
        use crate::export::json_escape;
        let wall_us = self.root().map(|r| r.incl_us).unwrap_or(0.0);
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", crate::SCHEMA_VERSION));
        out.push_str(&format!("  \"wall_us\": {wall_us:.1},\n"));
        out.push_str(&format!("  \"attributed_us\": {:.1},\n", self.root_child_sum_us()));
        out.push_str(&format!("  \"attributed_frac\": {:.4},\n", self.attributed_frac()));
        out.push_str("  \"threads\": [");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"label\": \"{}\", \"busy_us\": {:.1}, \"frames\": {}}}",
                json_escape(&t.label),
                t.busy_us,
                t.frames
            ));
        }
        out.push_str("],\n");
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {value}", json_escape(name)));
        }
        out.push_str("},\n");
        out.push_str("  \"nodes\": [\n");
        for (i, node) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"depth\": {}, \"incl_us\": {:.1}, \
                 \"excl_us\": {:.1}, \"calls\": {}}}{}\n",
                json_escape(&node.path),
                node.depth,
                node.incl_us,
                node.excl_us,
                node.calls,
                if i + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Serializes tests that manipulate the global profiler state.
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_us(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < us as u128 {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_profiler_collects_nothing() {
        let _guard = tests_serial();
        reset();
        disable();
        {
            let _s = scope("noop.root");
            let _c = scope("noop.child");
        }
        let profile = take();
        assert!(profile.nodes.is_empty());
        assert!(profile.to_folded().is_empty());
    }

    #[test]
    fn nested_scopes_build_a_consistent_tree() {
        let _guard = tests_serial();
        reset();
        enable();
        {
            let _root = scope("t.root");
            for _ in 0..3 {
                let _child = scope("t.child");
                spin_us(200);
            }
            {
                let _other = scope("t.other");
                spin_us(100);
            }
        }
        disable();
        let profile = take();

        let root = profile.root().expect("root node");
        assert_eq!(root.name, "t.root");
        assert_eq!(root.calls, 1);
        let child = profile.nodes.iter().find(|n| n.path == "t.root;t.child").unwrap();
        assert_eq!(child.calls, 3);
        assert!(child.incl_us >= 600.0 * 0.5, "child incl {}", child.incl_us);
        // Per-thread nesting invariant: parent inclusive ≥ Σ children.
        assert!(
            root.incl_us >= profile.root_child_sum_us() - 1e-6,
            "root {} < children {}",
            root.incl_us,
            profile.root_child_sum_us()
        );
        assert!(profile.attributed_frac() > 0.5);

        let folded = profile.to_folded();
        assert!(folded.contains("t.root;t.child "), "folded:\n{folded}");
        let json = profile.to_json(&[("x.counter".to_string(), 3.0)]);
        assert!(json.contains("\"x.counter\": 3"));
        assert!(json.contains("\"t.root;t.other\""));

        // take() reset the collector.
        assert!(take().nodes.is_empty());
    }

    #[test]
    fn workers_adopt_the_fork_path() {
        let _guard = tests_serial();
        reset();
        enable();
        {
            let _root = scope("f.root");
            let ctx = fork_context();
            std::thread::scope(|s| {
                for w in 0..2 {
                    let ctx = &ctx;
                    std::thread::Builder::new()
                        .name(format!("par-{w}"))
                        .spawn_scoped(s, move || {
                            let _ws = worker_scope(ctx);
                            let _inner = scope("f.work");
                            spin_us(200);
                        })
                        .unwrap();
                }
            });
            record_external(&ctx, "par.idle", 123.0);
        }
        disable();
        let profile = take();

        let worker = profile.nodes.iter().find(|n| n.path == "f.root;par.worker").unwrap();
        assert_eq!(worker.calls, 2, "both workers merge into one node");
        assert!(profile.nodes.iter().any(|n| n.path == "f.root;par.worker;f.work"));
        let idle = profile.nodes.iter().find(|n| n.path == "f.root;par.idle").unwrap();
        assert!((idle.incl_us - 123.0).abs() < 1e-9);
        assert_eq!(idle.calls, 1);
        let labels: Vec<_> = profile.threads.iter().map(|t| t.label.as_str()).collect();
        assert!(labels.contains(&"par-0") && labels.contains(&"par-1"), "{labels:?}");
    }
}
