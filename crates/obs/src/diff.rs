//! The noise-aware regression engine behind `paper diff`: joins the
//! cells of two report artifacts and classifies every movement as
//! NOISE / SIGNIFICANT / NEW / GONE using the interval-overlap test
//! from [`crate::stats`].
//!
//! Inputs are the schema-v3 report JSONs the harness writes under
//! `--metrics-out reports/` (and archives): each row may carry a join
//! key and a list of named `(num, den, clusters)` statistics. The diff
//! joins rows by key, then each statistic by name, and compares the
//! 99%-level Wilson intervals — two *disjoint* intervals mean the
//! movement cannot plausibly be seed noise, anything overlapping is
//! NOISE. Rows or stats present on one side only classify as NEW/GONE.
//!
//! The engine is pure (JSON in, classified table out); process concerns
//! — resolving paths, exit codes, the `--baseline` archive lookup —
//! live in the `paper` binary.

use crate::export::{parse_json, Json};
use crate::stats::{classify, DiffClass, Proportion, Z99};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One named statistic of one report row.
#[derive(Clone, Debug, PartialEq)]
pub struct CellStat {
    /// Statistic name (`per`, `tag_ber`, `acc`, …).
    pub name: String,
    /// The raw-count estimate.
    pub p: Proportion,
}

/// The joinable content of one report: title plus, per row key, the
/// row's statistics. Rows without statistics are invisible to the diff
/// (there is nothing principled to compare).
#[derive(Clone, Debug, Default)]
pub struct ReportCells {
    /// Report title.
    pub title: String,
    /// Row key → that row's statistics, in row order.
    pub rows: Vec<(String, Vec<CellStat>)>,
}

/// Parses a schema-v3 report JSON into its joinable cells. Reports from
/// older schema versions parse to an empty cell set (nothing to join)
/// rather than erroring — a diff against a pre-stats artifact reports
/// everything as NEW, which is the honest answer.
pub fn parse_report_cells(json: &str) -> Result<ReportCells, String> {
    let v = parse_json(json)?;
    let title = v.get("title").and_then(Json::as_str).unwrap_or("").to_string();
    let mut out = ReportCells { title, rows: Vec::new() };
    let (Some(keys), Some(stats)) =
        (v.get("keys").and_then(Json::as_arr), v.get("stats").and_then(Json::as_arr))
    else {
        return Ok(out);
    };
    for (i, row_stats) in stats.iter().enumerate() {
        let Some(row_stats) = row_stats.as_arr() else { continue };
        if row_stats.is_empty() {
            continue;
        }
        let key = keys
            .get(i)
            .and_then(Json::as_str)
            .filter(|k| !k.is_empty())
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{i}"));
        let mut cells = Vec::new();
        for s in row_stats {
            let (Some(name), Some(num), Some(den)) = (
                s.get("name").and_then(Json::as_str),
                s.get("num").and_then(Json::as_f64),
                s.get("den").and_then(Json::as_f64),
            ) else {
                continue;
            };
            let clusters = s.get("clusters").and_then(Json::as_f64).unwrap_or(den);
            let p = Proportion::clustered(num as u64, den as u64, clusters as u64);
            cells.push(CellStat { name: name.to_string(), p });
        }
        out.rows.push((key, cells));
    }
    Ok(out)
}

/// One classified statistic movement.
#[derive(Clone, Debug)]
pub struct StatDiff {
    /// Row join key.
    pub row: String,
    /// Statistic name.
    pub stat: String,
    /// The older run's estimate (`None` for NEW).
    pub a: Option<Proportion>,
    /// The newer run's estimate (`None` for GONE).
    pub b: Option<Proportion>,
    /// The verdict.
    pub class: DiffClass,
}

/// Counts per verdict across one or more diffs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffSummary {
    /// Movements within sampling noise.
    pub noise: usize,
    /// Movements beyond sampling noise.
    pub significant: usize,
    /// Statistics only the newer run has.
    pub new: usize,
    /// Statistics only the older run has.
    pub gone: usize,
}

impl DiffSummary {
    /// Folds one classified stat in.
    pub fn add(&mut self, class: DiffClass) {
        match class {
            DiffClass::Noise => self.noise += 1,
            DiffClass::Significant => self.significant += 1,
            DiffClass::New => self.new += 1,
            DiffClass::Gone => self.gone += 1,
        }
    }

    /// Merges another summary in.
    pub fn merge(&mut self, other: &DiffSummary) {
        self.noise += other.noise;
        self.significant += other.significant;
        self.new += other.new;
        self.gone += other.gone;
    }

    /// One-line rendering (`62 NOISE, 1 SIGNIFICANT, 0 NEW, 0 GONE`).
    pub fn line(&self) -> String {
        format!(
            "{} NOISE, {} SIGNIFICANT, {} NEW, {} GONE",
            self.noise, self.significant, self.new, self.gone
        )
    }
}

/// Diffs two parsed reports (`a` older, `b` newer) at critical value
/// `z` (use [`Z99`] unless you have a reason not to). Rows join by
/// key, stats by name; output order follows `b` with GONE rows of `a`
/// appended in `a`'s order.
pub fn diff_cells(a: &ReportCells, b: &ReportCells, z: f64) -> Vec<StatDiff> {
    let a_map: BTreeMap<&str, &Vec<CellStat>> =
        a.rows.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let b_keys: std::collections::BTreeSet<&str> = b.rows.iter().map(|(k, _)| k.as_str()).collect();
    let mut out = Vec::new();
    for (key, b_stats) in &b.rows {
        let a_stats = a_map.get(key.as_str());
        for bs in b_stats {
            let a_stat = a_stats.and_then(|ss| ss.iter().find(|s| s.name == bs.name));
            match a_stat {
                Some(as_) => out.push(StatDiff {
                    row: key.clone(),
                    stat: bs.name.clone(),
                    a: Some(as_.p),
                    b: Some(bs.p),
                    class: classify(&as_.p, &bs.p, z),
                }),
                None => out.push(StatDiff {
                    row: key.clone(),
                    stat: bs.name.clone(),
                    a: None,
                    b: Some(bs.p),
                    class: DiffClass::New,
                }),
            }
        }
        // Stats of this row that vanished.
        if let Some(a_stats) = a_stats {
            for as_ in *a_stats {
                if !b_stats.iter().any(|s| s.name == as_.name) {
                    out.push(StatDiff {
                        row: key.clone(),
                        stat: as_.name.clone(),
                        a: Some(as_.p),
                        b: None,
                        class: DiffClass::Gone,
                    });
                }
            }
        }
    }
    // Whole rows that vanished.
    for (key, a_stats) in &a.rows {
        if !b_keys.contains(key.as_str()) {
            for as_ in a_stats {
                out.push(StatDiff {
                    row: key.clone(),
                    stat: as_.name.clone(),
                    a: Some(as_.p),
                    b: None,
                    class: DiffClass::Gone,
                });
            }
        }
    }
    out
}

/// Renders one report's classified diff as an aligned table. With
/// `only_moved`, NOISE lines are summarized rather than listed — the
/// default for multi-report diffs where the interesting lines are the
/// exceptions.
pub fn render_diff(
    id: &str,
    diffs: &[StatDiff],
    summary: &DiffSummary,
    only_moved: bool,
) -> String {
    let fmt_p = |p: &Option<Proportion>| match p {
        Some(p) => format!("{}/{} ({:.3})", p.num, p.den, p.p_hat()),
        None => "-".to_string(),
    };
    let mut rows: Vec<[String; 5]> = Vec::new();
    for d in diffs {
        if only_moved && d.class == DiffClass::Noise {
            continue;
        }
        let delta = match (&d.a, &d.b) {
            (Some(a), Some(b)) => format!("{:+.3}", b.p_hat() - a.p_hat()),
            _ => "-".to_string(),
        };
        rows.push([
            format!("{}:{}", d.row, d.stat),
            fmt_p(&d.a),
            fmt_p(&d.b),
            delta,
            d.class.label().to_string(),
        ]);
    }
    let header = ["cell", "A", "B", "Δ", "class"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for r in &rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== diff {id} ==");
    let line = |out: &mut String, cells: &[&str]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let pad = widths[i].saturating_sub(c.chars().count());
            s.push_str(c);
            s.extend(std::iter::repeat_n(' ', pad));
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    if rows.is_empty() {
        let _ = writeln!(out, "  (no cell moved beyond noise)");
    } else {
        line(&mut out, &header);
        for r in &rows {
            line(&mut out, &r.iter().map(String::as_str).collect::<Vec<_>>());
        }
    }
    let _ = writeln!(out, "  summary: {}", summary.line());
    out
}

/// Summarizes a classified diff.
pub fn summarize(diffs: &[StatDiff]) -> DiffSummary {
    let mut s = DiffSummary::default();
    for d in diffs {
        s.add(d.class);
    }
    s
}

/// Diffs two report JSON strings end to end at the default gate
/// ([`Z99`]).
pub fn diff_report_json(a: &str, b: &str) -> Result<(Vec<StatDiff>, DiffSummary), String> {
    let ac = parse_report_cells(a)?;
    let bc = parse_report_cells(b)?;
    let diffs = diff_cells(&ac, &bc, Z99);
    let summary = summarize(&diffs);
    Ok((diffs, summary))
}

/// Resolves a diff operand into `(experiment id → report JSON)`:
/// a single report file, a `--metrics-out` directory (its `reports/`
/// subdirectory), or a directory of report JSON files.
pub fn collect_reports(path: &Path) -> Result<BTreeMap<String, String>, String> {
    let read = |p: &Path| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()));
    let mut out = BTreeMap::new();
    if path.is_file() {
        let id = path.file_stem().and_then(|s| s.to_str()).unwrap_or("report").to_string();
        out.insert(id, read(path)?);
        return Ok(out);
    }
    let dir = if path.join("reports").is_dir() { path.join("reports") } else { path.to_path_buf() };
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.extension().and_then(|e| e.to_str()) == Some("json") {
            if let (Some(id), Ok(body)) = (p.file_stem().and_then(|s| s.to_str()), read(&p)) {
                out.insert(id.to_string(), body);
            }
        }
    }
    if out.is_empty() {
        return Err(format!("{}: no report JSON files found", path.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn report_json(rows: &[(&str, &[(&str, u64, u64)])]) -> String {
        // Hand-built schema-v3 report with two display columns.
        let keys: Vec<String> = rows.iter().map(|(k, _)| format!("\"{k}\"")).collect();
        let cells: Vec<String> = rows.iter().map(|_| "[\"x\", \"y\"]".to_string()).collect();
        let stats: Vec<String> = rows
            .iter()
            .map(|(_, ss)| {
                let items: Vec<String> = ss
                    .iter()
                    .map(|(n, num, den)| {
                        format!(
                            "{{\"name\": \"{n}\", \"num\": {num}, \"den\": {den}, \"clusters\": {den}}}"
                        )
                    })
                    .collect();
                format!("[{}]", items.join(", "))
            })
            .collect();
        format!(
            "{{\"schema_version\": 3, \"title\": \"t\", \"header\": [\"a\", \"b\"], \"notes\": [], \"rows\": [{}], \"keys\": [{}], \"stats\": [{}]}}",
            cells.join(", "),
            keys.join(", "),
            stats.join(", ")
        )
    }

    #[test]
    fn seedlike_wobble_is_noise_and_cliff_flip_is_significant() {
        let a = report_json(&[
            ("los/ble/2", &[("per", 0, 12), ("ber", 3, 480)]),
            ("los/ble/20", &[("per", 2, 12)]),
        ]);
        let b = report_json(&[
            ("los/ble/2", &[("per", 1, 12), ("ber", 6, 480)]),
            ("los/ble/20", &[("per", 12, 12)]),
        ]);
        let (diffs, summary) = diff_report_json(&a, &b).unwrap();
        assert_eq!(summary, DiffSummary { noise: 2, significant: 1, new: 0, gone: 0 });
        let sig: Vec<_> = diffs.iter().filter(|d| d.class == DiffClass::Significant).collect();
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].row, "los/ble/20");
        let rendered = render_diff("fig13", &diffs, &summary, true);
        assert!(rendered.contains("SIGNIFICANT"));
        assert!(rendered.contains("los/ble/20:per"));
        assert!(!rendered.contains("los/ble/2:ber"), "noise rows hidden when only_moved");
        assert!(rendered.contains("2 NOISE, 1 SIGNIFICANT"));
    }

    #[test]
    fn new_and_gone_rows_and_stats_classify() {
        let a =
            report_json(&[("k1", &[("per", 0, 12), ("old", 1, 12)]), ("dead", &[("per", 0, 12)])]);
        let b = report_json(&[
            ("k1", &[("per", 0, 12), ("fresh", 1, 12)]),
            ("born", &[("per", 0, 12)]),
        ]);
        let (_, summary) = diff_report_json(&a, &b).unwrap();
        assert_eq!(summary, DiffSummary { noise: 1, significant: 0, new: 2, gone: 2 });
    }

    #[test]
    fn legacy_reports_parse_to_empty_cells() {
        let legacy = "{\"schema_version\": 2, \"title\": \"t\", \"header\": [], \"notes\": [], \"rows\": []}";
        let cells = parse_report_cells(legacy).unwrap();
        assert!(cells.rows.is_empty());
        let (diffs, summary) = diff_report_json(legacy, legacy).unwrap();
        assert!(diffs.is_empty());
        assert_eq!(summary, DiffSummary::default());
    }

    #[test]
    fn collect_reports_resolves_files_and_dirs() {
        let dir = std::env::temp_dir().join(format!("msc_diff_collect_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("reports")).unwrap();
        std::fs::write(dir.join("reports/fig13.json"), report_json(&[])).unwrap();
        std::fs::write(dir.join("reports/fig5.json"), report_json(&[])).unwrap();
        std::fs::write(dir.join("manifest.json"), "{}").unwrap();
        // A --metrics-out dir resolves to its reports/ subdir.
        let map = collect_reports(&dir).unwrap();
        assert_eq!(map.keys().cloned().collect::<Vec<_>>(), vec!["fig13", "fig5"]);
        // A single file resolves to one entry named after its stem.
        let one = collect_reports(&dir.join("reports/fig13.json")).unwrap();
        assert_eq!(one.len(), 1);
        assert!(one.contains_key("fig13"));
        assert!(collect_reports(&dir.join("missing")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
