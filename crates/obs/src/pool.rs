//! Thread-pool utilization accounting.
//!
//! `msc-par` reports one record per fan-out call: how long the call
//! took, how much of that the workers spent executing items versus
//! idling (started-up-but-starved, or done-and-waiting-for-join), and
//! the chunk-claim overhead. The counters are plain atomics so the
//! pool can report unconditionally — the live progress ticker and the
//! final metrics export both read them through [`snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

static CALLS: AtomicU64 = AtomicU64::new(0);
static ITEMS: AtomicU64 = AtomicU64::new(0);
static WALL_US: AtomicU64 = AtomicU64::new(0);
static BUSY_US: AtomicU64 = AtomicU64::new(0);
static IDLE_US: AtomicU64 = AtomicU64::new(0);
static CLAIM_US: AtomicU64 = AtomicU64::new(0);

/// Records one completed pool call. `busy_us`/`idle_us`/`claim_us`
/// are summed across that call's workers; `claim_us` may be 0 when
/// per-chunk tracking was off.
pub fn record_call(wall_us: f64, busy_us: f64, idle_us: f64, claim_us: f64, items: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    ITEMS.fetch_add(items, Ordering::Relaxed);
    WALL_US.fetch_add(wall_us as u64, Ordering::Relaxed);
    BUSY_US.fetch_add(busy_us as u64, Ordering::Relaxed);
    IDLE_US.fetch_add(idle_us as u64, Ordering::Relaxed);
    CLAIM_US.fetch_add(claim_us as u64, Ordering::Relaxed);
}

/// Cumulative pool totals since the last [`reset`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Fan-out calls completed.
    pub calls: u64,
    /// Items mapped across all calls.
    pub items: u64,
    /// Wall-clock spent inside pool calls, µs.
    pub wall_us: u64,
    /// Worker time spent executing items (summed across workers), µs.
    pub busy_us: u64,
    /// Worker time spent not executing items, µs.
    pub idle_us: u64,
    /// Chunk-claim/steal overhead (busy minus item execution), µs.
    pub claim_us: u64,
}

impl PoolStats {
    /// Workers' busy fraction: busy / (busy + idle), 1.0 when the pool
    /// has not run.
    pub fn utilization(&self) -> f64 {
        let denom = (self.busy_us + self.idle_us) as f64;
        if denom <= 0.0 {
            1.0
        } else {
            self.busy_us as f64 / denom
        }
    }
}

/// Reads the cumulative totals.
pub fn snapshot() -> PoolStats {
    PoolStats {
        calls: CALLS.load(Ordering::Relaxed),
        items: ITEMS.load(Ordering::Relaxed),
        wall_us: WALL_US.load(Ordering::Relaxed),
        busy_us: BUSY_US.load(Ordering::Relaxed),
        idle_us: IDLE_US.load(Ordering::Relaxed),
        claim_us: CLAIM_US.load(Ordering::Relaxed),
    }
}

/// Zeroes the totals (start of a run, tests).
pub fn reset() {
    CALLS.store(0, Ordering::Relaxed);
    ITEMS.store(0, Ordering::Relaxed);
    WALL_US.store(0, Ordering::Relaxed);
    BUSY_US.store(0, Ordering::Relaxed);
    IDLE_US.store(0, Ordering::Relaxed);
    CLAIM_US.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_reset() {
        let _guard = crate::profile::tests_serial();
        reset();
        record_call(100.0, 300.0, 100.0, 10.0, 64);
        record_call(50.0, 150.0, 50.0, 5.0, 32);
        let s = snapshot();
        assert_eq!(s.calls, 2);
        assert_eq!(s.items, 96);
        assert_eq!(s.busy_us, 450);
        assert_eq!(s.idle_us, 150);
        assert!((s.utilization() - 0.75).abs() < 1e-9);
        reset();
        assert_eq!(snapshot().calls, 0);
        assert_eq!(PoolStats::default().utilization(), 1.0);
    }
}
