//! Span-based structured tracing with a global subscriber.
//!
//! Instrumented code calls the [`crate::event!`] and [`crate::span!`]
//! macros; both check one relaxed [`AtomicBool`] and do nothing else
//! when no subscriber is installed, so instrumentation can live in hot
//! paths permanently. Installing a [`Subscriber`] flips the flag and
//! routes every record through it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

/// Whether a subscriber is installed (the macro fast path).
static TRACE_ON: AtomicBool = AtomicBool::new(false);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// One key/value pair attached to an event or span.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (the identifier at the macro call site).
    pub key: &'static str,
    /// Rendered value.
    pub value: String,
}

impl Field {
    /// A field rendered with `Display`.
    pub fn display(key: &'static str, value: &dyn std::fmt::Display) -> Self {
        Field { key, value: value.to_string() }
    }

    /// A field rendered with `Debug` (the `?value` macro sigil).
    pub fn debug(key: &'static str, value: &dyn std::fmt::Debug) -> Self {
        Field { key, value: format!("{value:?}") }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A point-in-time event.
    Event,
    /// A span was entered.
    SpanEnter,
    /// A span exited; the last field is its duration (`dur_us`).
    SpanExit,
}

/// One trace record delivered to a subscriber.
#[derive(Clone, Debug)]
pub struct Event<'a> {
    /// Record kind.
    pub kind: Kind,
    /// Dotted event name (`layer.thing`).
    pub name: &'a str,
    /// Attached fields.
    pub fields: &'a [Field],
}

/// The receiver side of the trace facility.
pub trait Subscriber: Send + Sync {
    /// Called once per event/span-enter/span-exit.
    fn on_event(&self, event: &Event<'_>);
}

/// Installs `sub` as the global subscriber and enables tracing.
pub fn install(sub: Arc<dyn Subscriber>) {
    *subscriber_slot().write().unwrap() = Some(sub);
    TRACE_ON.store(true, Ordering::Release);
}

/// Removes the global subscriber and disables tracing.
pub fn uninstall() {
    TRACE_ON.store(false, Ordering::Release);
    *subscriber_slot().write().unwrap() = None;
}

/// The macro fast path: true when a subscriber is installed.
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Delivers one record to the installed subscriber (macro slow path).
pub fn emit(kind: Kind, name: &str, fields: Vec<Field>) {
    if let Some(sub) = subscriber_slot().read().unwrap().as_ref() {
        sub.on_event(&Event { kind, name, fields: &fields });
    }
}

/// The guard returned by [`crate::span!`]: emits `SpanExit` with a
/// `dur_us` field when dropped, and closes the matching
/// [`crate::profile`] frame when the profiler is collecting.
pub struct SpanGuard {
    state: Option<(&'static str, Instant, Vec<Field>)>,
    profiled: bool,
}

impl SpanGuard {
    /// Opens a live span (tracing enabled at the call site). Also
    /// opens a profiler frame when the profiler is collecting.
    pub fn enter(name: &'static str, fields: Vec<Field>) -> Self {
        emit(Kind::SpanEnter, name, fields.clone());
        let profiled = crate::profile::enabled();
        if profiled {
            crate::profile::enter_frame(name);
        }
        SpanGuard { state: Some((name, Instant::now(), fields)), profiled }
    }

    /// Opens a profiler-only span (profiling on, tracing off): no
    /// subscriber events, no field allocation.
    pub fn profiled_only(name: &'static str) -> Self {
        let profiled = crate::profile::enabled();
        if profiled {
            crate::profile::enter_frame(name);
        }
        SpanGuard { state: None, profiled }
    }

    /// The no-op guard used when tracing and profiling are disabled.
    pub fn disabled() -> Self {
        SpanGuard { state: None, profiled: false }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::exit_frame();
        }
        if let Some((name, start, mut fields)) = self.state.take() {
            let dur_us = start.elapsed().as_secs_f64() * 1e6;
            fields.push(Field::display("dur_us", &format_args!("{dur_us:.1}")));
            emit(Kind::SpanExit, name, fields);
        }
    }
}

fn render(event: &Event<'_>) -> String {
    let mut line = String::with_capacity(64);
    match event.kind {
        Kind::Event => line.push_str("event "),
        Kind::SpanEnter => line.push_str("enter "),
        Kind::SpanExit => line.push_str("exit  "),
    }
    line.push_str(event.name);
    for f in event.fields {
        line.push(' ');
        line.push_str(f.key);
        line.push('=');
        line.push_str(&f.value);
    }
    line
}

/// A subscriber that prints human-readable lines to stderr (the
/// `paper --trace` sink and the probe examples' output path).
#[derive(Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        eprintln!("[trace] {}", render(event));
    }
}

/// A subscriber that collects rendered lines in memory (tests and the
/// probe examples use it to assert on / print what was traced).
#[derive(Default)]
pub struct CollectingSubscriber {
    lines: Mutex<Vec<String>>,
}

impl CollectingSubscriber {
    /// Takes all lines collected so far.
    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut self.lines.lock().unwrap())
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        self.lines.lock().unwrap().push(render(event));
    }
}

/// Serializes tests that manipulate the global subscriber.
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_times_and_renders() {
        let _guard = tests_serial();
        let sub = Arc::new(CollectingSubscriber::default());
        install(sub.clone());
        {
            let _s = SpanGuard::enter("t.span", vec![Field::display("k", &7)]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        uninstall();
        let lines = sub.take();
        assert_eq!(lines.len(), 2);
        let exit = &lines[1];
        let dur: f64 = exit
            .split("dur_us=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(dur >= 1000.0, "span duration {dur} µs");
        assert!(exit.contains("k=7"));
    }

    #[test]
    fn disabled_guard_emits_nothing() {
        let _guard = tests_serial();
        uninstall();
        let sub = Arc::new(CollectingSubscriber::default());
        {
            let _s = SpanGuard::disabled();
        }
        assert!(sub.take().is_empty());
    }
}
