//! Exporters: JSON-lines and CSV serialization of registry snapshots,
//! plus a minimal JSON parser for round-trip verification and tooling.

use crate::metrics::{Record, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (finite required; callers only
/// export finite statistics).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` on f64 always includes a `.` or exponent, both valid JSON.
        s
    } else {
        "null".to_string()
    }
}

fn record_labels(rec: &Record, out: &mut String) {
    let _ = write!(
        out,
        "\"name\":\"{}\",\"experiment\":\"{}\",\"protocol\":\"{}\",\"stage\":\"{}\"",
        json_escape(rec.key.name),
        json_escape(&rec.key.experiment),
        json_escape(rec.key.protocol),
        json_escape(rec.key.stage),
    );
}

/// Serializes one record as a single JSON line (no trailing newline).
pub fn record_to_json(rec: &Record) -> String {
    let mut out = String::from("{");
    match &rec.value {
        Value::Counter(c) => {
            out.push_str("\"type\":\"counter\",");
            record_labels(rec, &mut out);
            let _ = write!(out, ",\"value\":{c}");
        }
        Value::Gauge(g) => {
            out.push_str("\"type\":\"gauge\",");
            record_labels(rec, &mut out);
            let _ = write!(out, ",\"value\":{}", json_num(*g));
        }
        Value::Histogram(h) => {
            out.push_str("\"type\":\"histogram\",");
            record_labels(rec, &mut out);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.mean()),
                json_num(h.quantile(0.50)),
                json_num(h.quantile(0.90)),
                json_num(h.quantile(0.99))
            );
            out.push_str(",\"edges\":[");
            for (i, e) in h.edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_num(*e));
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Serializes a snapshot as JSON-lines: one `meta` line carrying the
/// export schema version and record count, then one line per record.
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema_version\":{},\"records\":{}}}",
        crate::SCHEMA_VERSION,
        records.len()
    );
    for rec in records {
        out.push_str(&record_to_json(rec));
        out.push('\n');
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a snapshot as CSV. Histograms flatten to one row per
/// summary statistic (`count`, `sum`, `min`, `max`, `mean`) plus one
/// row per bucket (`field` = `le_<edge>` / `le_inf`).
pub fn to_csv(records: &[Record]) -> String {
    let mut out = String::from("name,type,experiment,protocol,stage,field,value\n");
    let mut row = |name: &str, ty: &str, rec: &Record, field: &str, value: String| {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            csv_escape(name),
            ty,
            csv_escape(&rec.key.experiment),
            csv_escape(rec.key.protocol),
            csv_escape(rec.key.stage),
            field,
            value
        );
    };
    for rec in records {
        match &rec.value {
            Value::Counter(c) => row(rec.key.name, "counter", rec, "value", c.to_string()),
            Value::Gauge(g) => row(rec.key.name, "gauge", rec, "value", format!("{g}")),
            Value::Histogram(h) => {
                row(rec.key.name, "histogram", rec, "count", h.count.to_string());
                row(rec.key.name, "histogram", rec, "sum", format!("{}", h.sum));
                row(rec.key.name, "histogram", rec, "min", format!("{}", h.min));
                row(rec.key.name, "histogram", rec, "max", format!("{}", h.max));
                row(rec.key.name, "histogram", rec, "mean", format!("{}", h.mean()));
                row(rec.key.name, "histogram", rec, "p50", format!("{}", h.quantile(0.50)));
                row(rec.key.name, "histogram", rec, "p90", format!("{}", h.quantile(0.90)));
                row(rec.key.name, "histogram", rec, "p99", format!("{}", h.quantile(0.99)));
                for (i, c) in h.counts.iter().enumerate() {
                    let field = if i < h.edges.len() {
                        format!("le_{}", h.edges[i])
                    } else {
                        "le_inf".to_string()
                    };
                    row(rec.key.name, "histogram", rec, &field, c.to_string());
                }
            }
        }
    }
    out
}

/// A parsed JSON value (the subset the exporters emit).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at an object key, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry a byte offset.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let k = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        out.insert(k, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{buckets, Key, Registry};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        let key = |name: &'static str| Key {
            name,
            experiment: "fig13".into(),
            protocol: "802.11b",
            stage: "decode",
        };
        r.counter_add(key("rx.decoded"), 42);
        r.gauge_set(key("rx.ber"), 0.0125);
        for v in [0.3, 0.55, 0.92, 0.97] {
            r.hist_observe(key("id.score"), v, buckets::SCORE);
        }
        r
    }

    #[test]
    fn jsonl_round_trips_every_field() {
        let r = sample_registry();
        let snap = r.snapshot();
        let jsonl = to_jsonl(&snap);
        let mut lines = jsonl.lines();
        let meta = parse_json(lines.next().unwrap()).expect("meta line");
        assert_eq!(meta.get("type").unwrap().as_str().unwrap(), "meta");
        assert_eq!(
            meta.get("schema_version").unwrap().as_f64().unwrap() as u32,
            crate::SCHEMA_VERSION
        );
        assert_eq!(meta.get("records").unwrap().as_f64().unwrap() as usize, snap.len());
        let lines: Vec<&str> = lines.collect();
        assert_eq!(lines.len(), 3);
        for (line, rec) in lines.iter().zip(&snap) {
            let v = parse_json(line).expect("valid JSON");
            assert_eq!(v.get("name").unwrap().as_str().unwrap(), rec.key.name);
            assert_eq!(v.get("experiment").unwrap().as_str().unwrap(), "fig13");
            assert_eq!(v.get("protocol").unwrap().as_str().unwrap(), "802.11b");
            assert_eq!(v.get("stage").unwrap().as_str().unwrap(), "decode");
            match &rec.value {
                crate::metrics::Value::Counter(c) => {
                    assert_eq!(v.get("value").unwrap().as_f64().unwrap() as u64, *c);
                }
                crate::metrics::Value::Gauge(g) => {
                    assert_eq!(v.get("value").unwrap().as_f64().unwrap(), *g);
                }
                crate::metrics::Value::Histogram(h) => {
                    assert_eq!(v.get("count").unwrap().as_f64().unwrap() as u64, h.count);
                    assert_eq!(v.get("sum").unwrap().as_f64().unwrap(), h.sum);
                    assert_eq!(v.get("p50").unwrap().as_f64().unwrap(), h.quantile(0.5));
                    assert_eq!(v.get("p90").unwrap().as_f64().unwrap(), h.quantile(0.9));
                    assert_eq!(v.get("p99").unwrap().as_f64().unwrap(), h.quantile(0.99));
                    let counts = v.get("counts").unwrap().as_arr().unwrap();
                    assert_eq!(counts.len(), h.counts.len());
                    let total: f64 = counts.iter().map(|c| c.as_f64().unwrap()).sum();
                    assert_eq!(total as u64, h.count);
                    let edges = v.get("edges").unwrap().as_arr().unwrap();
                    assert_eq!(edges.len(), h.edges.len());
                }
            }
        }
    }

    #[test]
    fn csv_has_header_and_flattened_rows() {
        let r = sample_registry();
        let csv = to_csv(&r.snapshot());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "name,type,experiment,protocol,stage,field,value");
        assert!(csv.contains("rx.decoded,counter,fig13,802.11b,decode,value,42"));
        assert!(csv.contains("id.score,histogram,fig13,802.11b,decode,count,4"));
        assert!(csv.contains("id.score,histogram,fig13,802.11b,decode,p50,"));
        assert!(csv.contains("id.score,histogram,fig13,802.11b,decode,p99,"));
        assert!(csv.contains("le_inf"));
    }

    #[test]
    fn escaping_survives_hostile_labels() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let parsed = parse_json("\"a\\\"b\\\\c\\nd\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "a\"b\\c\nd");
        assert_eq!(csv_escape("x,y"), "\"x,y\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn parser_handles_nested_structures() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"s"}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_f64().unwrap(), -300.0);
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Null);
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn identical_registries_export_identically() {
        // The determinism contract exports rely on: same observations →
        // byte-identical JSONL.
        let a = to_jsonl(&sample_registry().snapshot());
        let b = to_jsonl(&sample_registry().snapshot());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
