//! Structured event stream: a bounded, run-scoped JSONL sink
//! (`paper --events <path|->`) — the serving seam a future scenario
//! daemon will stream to clients.
//!
//! Every line is one event:
//!
//! ```json
//! {"schema_version":3,"seq":7,"kind":"cell_done","cell":"los/BLE/8",
//!  "trials":12,"requested":12,"wall":{"t_us":18234}}
//! ```
//!
//! The fields before `"wall"` are **deterministic**: they derive only
//! from the run's `(n, seed, config)` and never from clocks or thread
//! scheduling, and every emission site sits on a sequential code path
//! (the experiment loop, the per-cell caller thread, the fleet MAC
//! sweep). The single trailing `"wall"` object holds *everything*
//! volatile — timestamps, rates, utilization, thread counts — so
//! [`strip_volatile`] reduces the stream to a byte-identical form at
//! any `--threads`. Sequence numbers are assigned under the sink lock
//! in emission order, which is itself deterministic.
//!
//! The sink is bounded: after `cap` events further [`emit`] calls only
//! bump a drop counter (the cap applies to the deterministic stream,
//! so the count — reported in the terminal `run_end` event, which
//! [`emit_terminal`] writes past the cap — is deterministic too).
//!
//! The event sink is deliberately **outside** the archive config hash:
//! like `--trace` and `--profile`, it only observes, so an
//! events-enabled run must produce byte-identical reports.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default cap on emitted events per run (excluding the terminal
/// `run_end`). Far above a `paper all` run (~2k cells); a runaway
/// emitter degrades to a counter instead of filling the disk.
pub const DEFAULT_CAP: usize = 200_000;

/// Whether a sink is open (the emission fast path).
static OPEN: AtomicBool = AtomicBool::new(false);

/// Sink totals, queryable while open and returned by [`close`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EventStats {
    /// Events written (== the last line's `seq` + 1).
    pub written: u64,
    /// Events dropped after the cap was hit.
    pub dropped: u64,
}

struct Sink {
    out: Box<dyn Write + Send>,
    seq: u64,
    dropped: u64,
    cap: usize,
    t0: Instant,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Opens the sink writing to `path` (`"-"` = stdout) with the default
/// cap. Any previously open sink is flushed and replaced.
pub fn open_path(path: &str) -> std::io::Result<()> {
    let out: Box<dyn Write + Send> = if path == "-" {
        Box::new(std::io::stdout())
    } else {
        Box::new(BufWriter::new(File::create(path)?))
    };
    let mut s = sink().lock().unwrap();
    *s = Some(Sink { out, seq: 0, dropped: 0, cap: DEFAULT_CAP, t0: Instant::now() });
    OPEN.store(true, Ordering::Release);
    Ok(())
}

/// The emission fast path: true while a sink is open.
#[inline(always)]
pub fn enabled() -> bool {
    OPEN.load(Ordering::Relaxed)
}

/// Emits one event. `det` is a pre-rendered fragment of deterministic
/// `"key":value` pairs (no braces, no leading comma; may be empty);
/// `volatile` is an equally-shaped fragment placed *inside* the
/// trailing `"wall"` object next to `t_us`. No-op when no sink is
/// open; counted-but-dropped past the cap.
pub fn emit(kind: &str, det: &str, volatile: &str) {
    if !enabled() {
        return;
    }
    write_line(kind, det, volatile, false);
}

/// [`emit`] that bypasses the cap — reserved for the terminal
/// `run_end` event so a capped run still records its totals.
pub fn emit_terminal(kind: &str, det: &str, volatile: &str) {
    if !enabled() {
        return;
    }
    write_line(kind, det, volatile, true);
}

fn write_line(kind: &str, det: &str, volatile: &str, terminal: bool) {
    let mut guard = sink().lock().unwrap();
    let Some(s) = guard.as_mut() else {
        return;
    };
    if !terminal && s.seq >= s.cap as u64 {
        s.dropped += 1;
        return;
    }
    let mut line = String::with_capacity(96 + det.len() + volatile.len());
    line.push_str(&format!(
        "{{\"schema_version\":{},\"seq\":{},\"kind\":\"{}\"",
        crate::SCHEMA_VERSION,
        s.seq,
        crate::export::json_escape(kind)
    ));
    if !det.is_empty() {
        line.push(',');
        line.push_str(det);
    }
    line.push_str(&format!(",\"wall\":{{\"t_us\":{}", s.t0.elapsed().as_micros()));
    if !volatile.is_empty() {
        line.push(',');
        line.push_str(volatile);
    }
    line.push_str("}}\n");
    let _ = s.out.write_all(line.as_bytes());
    s.seq += 1;
}

/// Current sink totals (zeroes when no sink is open).
pub fn stats() -> EventStats {
    let guard = sink().lock().unwrap();
    guard.as_ref().map(|s| EventStats { written: s.seq, dropped: s.dropped }).unwrap_or_default()
}

/// Flushes and closes the sink, returning its totals. No-op (and
/// `None`) when no sink is open.
pub fn close() -> Option<EventStats> {
    OPEN.store(false, Ordering::Release);
    let mut guard = sink().lock().unwrap();
    guard.take().map(|mut s| {
        let _ = s.out.flush();
        EventStats { written: s.seq, dropped: s.dropped }
    })
}

/// Strips the volatile `"wall"` object from one event line, leaving
/// only the deterministic prefix — the form that must be byte-identical
/// at any thread count. Lines without a `"wall"` object pass through.
pub fn strip_volatile(line: &str) -> String {
    let line = line.trim_end();
    match line.rfind(",\"wall\":{") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    }
}

/// Serializes tests that open/close the global sink.
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("msc_events_{name}_{}", std::process::id()))
    }

    #[test]
    fn events_stream_shape_and_seq() {
        let _guard = tests_serial();
        let path = tmp("shape");
        open_path(path.to_str().unwrap()).unwrap();
        emit("run_start", "\"n\":8,\"seed\":42", "\"threads\":4");
        emit("cell_done", "\"cell\":\"a/b\",\"trials\":8", "");
        emit_terminal("run_end", "\"cells\":1,\"events_dropped\":0", "\"rate\":1.5");
        let st = close().unwrap();
        assert_eq!(st.written, 3);
        assert_eq!(st.dropped, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::export::parse_json(line).expect("valid JSON");
            assert_eq!(
                v.get("schema_version").unwrap().as_f64().unwrap() as u32,
                crate::SCHEMA_VERSION
            );
            assert_eq!(v.get("seq").unwrap().as_f64().unwrap() as usize, i);
            assert!(v.get("wall").unwrap().get("t_us").is_some());
        }
        assert!(lines[0].contains("\"kind\":\"run_start\""));
        assert!(lines[2].contains("\"rate\":1.5"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strip_volatile_removes_only_the_wall_object() {
        let line = "{\"schema_version\":3,\"seq\":0,\"kind\":\"x\",\"a\":1,\"wall\":{\"t_us\":99,\"rate\":2.0}}";
        assert_eq!(strip_volatile(line), "{\"schema_version\":3,\"seq\":0,\"kind\":\"x\",\"a\":1}");
        let stripped = strip_volatile(line);
        crate::export::parse_json(&stripped).expect("stripped line stays valid JSON");
        assert_eq!(strip_volatile("{\"no_wall\":1}"), "{\"no_wall\":1}");
    }

    #[test]
    fn cap_drops_but_terminal_bypasses() {
        let _guard = tests_serial();
        let path = tmp("cap");
        open_path(path.to_str().unwrap()).unwrap();
        {
            let mut g = sink().lock().unwrap();
            g.as_mut().unwrap().cap = 2;
        }
        for _ in 0..5 {
            emit("tick", "", "");
        }
        emit_terminal("run_end", "\"events_dropped\":3", "");
        let st = close().unwrap();
        assert_eq!(st.written, 3, "2 capped + 1 terminal");
        assert_eq!(st.dropped, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().last().unwrap().contains("run_end"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let _guard = tests_serial();
        let _ = close(); // ensure any leaked sink from another test is shut
        assert!(!enabled());
        emit("nope", "\"a\":1", "");
        assert_eq!(stats().written, 0);
    }
}
