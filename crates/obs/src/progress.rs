//! Live run progress: a stderr ticker for long `paper` runs.
//!
//! The simulation layer bumps three atomic counters — experiments
//! done, cells done, trials done — and [`start`] spawns a ticker
//! thread that renders them to stderr together with the trial rate,
//! an ETA extrapolated from experiments completed so far, and the
//! worker utilization from [`crate::pool`]. On a TTY the line redraws
//! in place four times a second; on a pipe (CI logs) it prints a full
//! line every few seconds instead. `paper --no-progress` skips
//! [`start`] entirely, and the same counters are exported as gauges in
//! the final metrics either way.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static EXPERIMENTS_DONE: AtomicU64 = AtomicU64::new(0);
static EXPERIMENTS_TOTAL: AtomicU64 = AtomicU64::new(0);
static CELLS: AtomicU64 = AtomicU64::new(0);
static TRIALS: AtomicU64 = AtomicU64::new(0);

/// Zeroes the progress counters and records the run's experiment
/// count.
pub fn reset(total_experiments: u64) {
    EXPERIMENTS_DONE.store(0, Ordering::Relaxed);
    EXPERIMENTS_TOTAL.store(total_experiments, Ordering::Relaxed);
    CELLS.store(0, Ordering::Relaxed);
    TRIALS.store(0, Ordering::Relaxed);
}

/// Marks one experiment cell finished.
#[inline]
pub fn add_cell() {
    CELLS.fetch_add(1, Ordering::Relaxed);
}

/// Adds `n` finished Monte-Carlo trials.
#[inline]
pub fn add_trials(n: u64) {
    TRIALS.fetch_add(n, Ordering::Relaxed);
}

/// Marks one experiment finished (drives the ETA). When the event
/// sink is open this also emits a `progress` event: the counter
/// snapshot is deterministic at experiment boundaries (the same work
/// ran regardless of thread count), so the tick joins the
/// deterministic stream; worker utilization rides the volatile
/// `wall` object.
#[inline]
pub fn experiment_done() {
    EXPERIMENTS_DONE.fetch_add(1, Ordering::Relaxed);
    if crate::events::enabled() {
        let c = counters();
        crate::events::emit(
            "progress",
            &format!(
                "\"experiments_done\":{},\"experiments_total\":{},\"cells\":{},\"trials\":{}",
                c.experiments_done, c.experiments_total, c.cells, c.trials
            ),
            &format!("\"util\":{:.3}", crate::pool::snapshot().utilization()),
        );
    }
}

/// A snapshot of the progress counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// Experiments finished.
    pub experiments_done: u64,
    /// Experiments the run will execute.
    pub experiments_total: u64,
    /// Cells finished.
    pub cells: u64,
    /// Trials finished.
    pub trials: u64,
}

/// Reads the counters.
pub fn counters() -> Counters {
    Counters {
        experiments_done: EXPERIMENTS_DONE.load(Ordering::Relaxed),
        experiments_total: EXPERIMENTS_TOTAL.load(Ordering::Relaxed),
        cells: CELLS.load(Ordering::Relaxed),
        trials: TRIALS.load(Ordering::Relaxed),
    }
}

fn human_count(n: f64) -> String {
    if n >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

fn render(t0: Instant) -> String {
    let c = counters();
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let rate = c.trials as f64 / elapsed;
    let eta = if c.experiments_done > 0 && c.experiments_total > c.experiments_done {
        let remaining = (c.experiments_total - c.experiments_done) as f64;
        let per = elapsed / c.experiments_done as f64;
        format!("{:.0}s", per * remaining)
    } else {
        "--".to_string()
    };
    let util = crate::pool::snapshot().utilization();
    format!(
        "[paper] exp {}/{} · cells {} · trials {} · {}/s · workers {:.0}% busy · eta {}",
        c.experiments_done,
        c.experiments_total,
        c.cells,
        human_count(c.trials as f64),
        human_count(rate),
        util * 100.0,
        eta
    )
}

/// Handle for a running ticker; call [`ProgressTicker::finish`] (or
/// drop) to stop it and clear the line.
pub struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Starts the ticker thread. Resets the counters for a run of
/// `total_experiments` experiments.
pub fn start(total_experiments: u64) -> ProgressTicker {
    reset(total_experiments);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let t0 = Instant::now();
    let tty = std::io::stderr().is_terminal();
    let handle = std::thread::Builder::new()
        .name("msc-progress".to_string())
        .spawn(move || {
            // TTY: redraw in place at 4 Hz. Pipe: one full line every
            // 2 s so CI logs stay readable. Poll the stop flag at
            // 50 ms so finish() never blocks long.
            let interval = if tty { 250 } else { 2000 };
            let mut since_render = 0u64;
            let mut drew = false;
            loop {
                std::thread::sleep(Duration::from_millis(50));
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                since_render += 50;
                if since_render < interval {
                    continue;
                }
                since_render = 0;
                let line = render(t0);
                let mut err = std::io::stderr().lock();
                if tty {
                    let _ = write!(err, "\r\x1b[2K{line}");
                    let _ = err.flush();
                    drew = true;
                } else {
                    let _ = writeln!(err, "{line}");
                }
            }
            if tty && drew {
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[2K");
                let _ = err.flush();
            }
        })
        .expect("spawn progress ticker");
    ProgressTicker { stop, handle: Some(handle) }
}

impl ProgressTicker {
    /// Stops the ticker, joins the thread, and prints one final
    /// summary line to stderr.
    pub fn finish(mut self) {
        self.stop_and_join();
        // One closing line so even TTY runs keep a durable record.
        eprintln!("{}", render_final());
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn render_final() -> String {
    let c = counters();
    let util = crate::pool::snapshot().utilization();
    format!(
        "[paper] done: {} experiments · {} cells · {} trials · workers {:.0}% busy",
        c.experiments_done,
        c.cells,
        human_count(c.trials as f64),
        util * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_and_ticker_stops_cleanly() {
        let _guard = crate::profile::tests_serial();
        let ticker = start(3);
        add_cell();
        add_cell();
        add_trials(100);
        experiment_done();
        let c = counters();
        assert_eq!(c.experiments_done, 1);
        assert_eq!(c.experiments_total, 3);
        assert_eq!(c.cells, 2);
        assert_eq!(c.trials, 100);
        let line = render(Instant::now());
        assert!(line.contains("exp 1/3"), "{line}");
        assert!(line.contains("cells 2"), "{line}");
        ticker.finish();
    }

    #[test]
    fn human_counts_abbreviate() {
        assert_eq!(human_count(950.0), "950");
        assert_eq!(human_count(12_300.0), "12.3k");
        assert_eq!(human_count(4_000_000.0), "4.0M");
    }
}
