//! Run manifests: the provenance record written alongside exported
//! metrics so every results directory is self-describing — which git
//! revision produced it, with which RNG seed and config knobs, and how
//! long each experiment took.

use crate::export::json_escape;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// One experiment's entry in the manifest.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// Experiment id (`fig13`, `tab1`, …).
    pub id: String,
    /// Wall-clock seconds the runner took.
    pub wall_s: f64,
    /// Number of table rows the runner produced.
    pub rows: usize,
}

/// The provenance record for one invocation of the paper harness.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// Export schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Unix timestamp (seconds) when the run started.
    pub created_unix_s: u64,
    /// `git` revision of the working tree (`unknown` outside a repo).
    pub git_rev: String,
    /// The full command line.
    pub cmdline: Vec<String>,
    /// Monte-Carlo iteration knob (`n`).
    pub n: usize,
    /// The root RNG seed every experiment derives its streams from.
    pub seed: u64,
    /// Whether the larger `--full` Monte-Carlo preset was used.
    pub full: bool,
    /// Monte-Carlo worker-pool size (0 when the harness ran without a
    /// configured pool). Results are thread-count-invariant; this is
    /// recorded for performance provenance only.
    pub threads: usize,
    /// Trial batch width of the SoA engine (1 = legacy per-trial
    /// engine; any width > 1 is result-identical to any other).
    pub batch: usize,
    /// Whether adaptive per-cell early stopping was enabled.
    pub early_stop: bool,
    /// Host OS (compile-time).
    pub host_os: String,
    /// Host architecture (compile-time).
    pub host_arch: String,
    /// Per-experiment timings, in execution order.
    pub experiments: Vec<ExperimentRun>,
}

impl RunManifest {
    /// Starts a manifest for the current process: timestamp, git
    /// revision (resolved from `repo_root`), command line, and knobs.
    pub fn start(repo_root: &Path, n: usize, seed: u64, full: bool) -> Self {
        RunManifest {
            schema_version: crate::SCHEMA_VERSION,
            created_unix_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_rev: git_rev(repo_root),
            cmdline: std::env::args().collect(),
            n,
            seed,
            full,
            threads: 0,
            batch: 1,
            early_stop: false,
            host_os: std::env::consts::OS.to_string(),
            host_arch: std::env::consts::ARCH.to_string(),
            experiments: Vec::new(),
        }
    }

    /// Sets the recorded worker-pool size.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Records the trial engine configuration (batch width and early
    /// stopping).
    pub fn with_engine(mut self, batch: usize, early_stop: bool) -> Self {
        self.batch = batch;
        self.early_stop = early_stop;
        self
    }

    /// Records one completed experiment.
    pub fn record(&mut self, id: &str, wall_s: f64, rows: usize) {
        self.experiments.push(ExperimentRun { id: id.to_string(), wall_s, rows });
    }

    /// Serializes the manifest as pretty-enough JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"created_unix_s\": {},", self.created_unix_s);
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", json_escape(&self.git_rev));
        let args: Vec<String> =
            self.cmdline.iter().map(|a| format!("\"{}\"", json_escape(a))).collect();
        let _ = writeln!(out, "  \"cmdline\": [{}],", args.join(", "));
        let _ = writeln!(out, "  \"n\": {},", self.n);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"full\": {},", self.full);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"batch\": {},", self.batch);
        let _ = writeln!(out, "  \"early_stop\": {},", self.early_stop);
        let _ = writeln!(out, "  \"host_os\": \"{}\",", json_escape(&self.host_os));
        let _ = writeln!(out, "  \"host_arch\": \"{}\",", json_escape(&self.host_arch));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": \"{}\", \"wall_s\": {:.3}, \"rows\": {}}}",
                json_escape(&e.id),
                e.wall_s,
                e.rows
            );
            out.push_str(if i + 1 < self.experiments.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `manifest.json` into `dir` (creating it if needed).
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("manifest.json"), self.to_json())
    }
}

/// Resolves the current git revision by reading `.git` directly (no
/// subprocess, works in minimal containers). Returns `"unknown"` when
/// `repo_root` is not a git checkout.
pub fn git_rev(repo_root: &Path) -> String {
    let head_path = repo_root.join(".git/HEAD");
    let Ok(head) = std::fs::read_to_string(&head_path) else {
        return "unknown".to_string();
    };
    let head = head.trim();
    if let Some(r) = head.strip_prefix("ref: ") {
        // Direct ref file, then packed-refs.
        if let Ok(rev) = std::fs::read_to_string(repo_root.join(".git").join(r)) {
            return rev.trim().to_string();
        }
        if let Ok(packed) = std::fs::read_to_string(repo_root.join(".git/packed-refs")) {
            for line in packed.lines() {
                if let Some(rev) = line.strip_suffix(r) {
                    return rev.trim().to_string();
                }
            }
        }
        format!("unresolved:{r}")
    } else {
        head.to_string() // detached HEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::parse_json;

    #[test]
    fn manifest_serializes_to_valid_json() {
        let mut m =
            RunManifest::start(Path::new("/nonexistent"), 12, 42, false).with_engine(8, true);
        m.record("fig05", 1.25, 5);
        m.record("tab1", 0.5, 8);
        let v = parse_json(&m.to_json()).expect("valid JSON");
        assert_eq!(v.get("seed").unwrap().as_f64().unwrap() as u64, 42);
        assert_eq!(v.get("n").unwrap().as_f64().unwrap() as usize, 12);
        assert_eq!(v.get("batch").unwrap().as_f64().unwrap() as usize, 8);
        assert!(matches!(v.get("early_stop").unwrap(), crate::export::Json::Bool(true)));
        assert_eq!(v.get("git_rev").unwrap().as_str().unwrap(), "unknown");
        assert_eq!(
            v.get("schema_version").unwrap().as_f64().unwrap() as u32,
            crate::SCHEMA_VERSION
        );
        let exps = v.get("experiments").unwrap().as_arr().unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("id").unwrap().as_str().unwrap(), "fig05");
        assert_eq!(exps[1].get("rows").unwrap().as_f64().unwrap() as usize, 8);
    }

    #[test]
    fn manifest_writes_to_dir() {
        let dir = std::env::temp_dir().join(format!("msc_obs_manifest_{}", std::process::id()));
        let m = RunManifest::start(Path::new("."), 1, 7, true);
        m.write(&dir).expect("write");
        let body = std::fs::read_to_string(dir.join("manifest.json")).expect("read back");
        assert!(parse_json(&body).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_rev_resolves_in_this_repo_if_present() {
        // Walk up from the crate dir looking for a .git; when found the
        // revision must be a 40-hex string or unresolved marker.
        let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        while !dir.join(".git").exists() {
            if !dir.pop() {
                return; // not in a git checkout; nothing to assert
            }
        }
        let rev = git_rev(&dir);
        assert!(
            rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())
                || rev.starts_with("unresolved:"),
            "unexpected rev: {rev}"
        );
    }
}
