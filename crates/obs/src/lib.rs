//! # msc-obs — observability for the multiscatter stack
//!
//! The measurement substrate the rest of the workspace reports through:
//!
//! * **Structured tracing** ([`trace`]): `event!` / `span!` macros that
//!   compile down to one relaxed atomic load when no subscriber is
//!   installed, and deliver named key/value records to a global
//!   [`trace::Subscriber`] when one is.
//! * **Metrics registry** ([`metrics`]): counters, gauges, and
//!   fixed-bucket histograms keyed by `(experiment, protocol, stage)`.
//!   Disabled by default; instrumented hot paths pay only an atomic
//!   load until [`metrics::enable`] is called.
//! * **Exporters** ([`export`]): JSON-lines and CSV serialization of a
//!   registry snapshot, plus a minimal JSON parser used for round-trip
//!   verification.
//! * **Run manifests** ([`manifest`]): git revision, RNG seed, config
//!   knobs, and per-experiment wall-clock, written alongside results so
//!   any metrics file can be traced back to the run that produced it.
//! * **Span profiler** ([`profile`]): aggregates spans and stage
//!   timings into a call-tree profile with folded-stack
//!   (flamegraph-compatible) and JSON output (`paper --profile`).
//! * **Flight recorder** ([`flight`]): a bounded ring of per-trial
//!   context that dumps replayable failure bundles (`paper replay`).
//! * **Event stream** ([`events`]): a bounded run-scoped JSONL sink
//!   (`paper --events`) of schema-versioned, sequence-numbered run /
//!   experiment / cell / fleet-window records whose deterministic
//!   prefix is byte-identical at any thread count.
//! * **Live progress** ([`progress`]) and **pool utilization**
//!   ([`pool`]): run-level counters and the stderr ticker.
//! * **Estimator statistics** ([`stats`]): Wilson-score confidence
//!   intervals, clustered-sample corrections, and the interval-overlap
//!   significance test behind `--ci` columns and regression gating.
//! * **Run archive** ([`archive`]): content-addressed storage of report
//!   tables keyed by (experiment, seed, git rev, config hash), with an
//!   index and pruning.
//! * **Diff engine** ([`diff`]): joins cells across two archived runs
//!   and classifies each movement NOISE / SIGNIFICANT / NEW / GONE
//!   (`paper diff`).
//!
//! ## Naming scheme
//!
//! Event and metric names are dotted `layer.thing` pairs — `id.score`,
//! `overlay.tag_bits`, `rx.decode_err`, `pipe.stage_us` — and every
//! metric carries the `(experiment, protocol, stage)` label triple (any
//! of which may be `""` when not applicable). See DESIGN.md
//! ("Observability") for the full catalog and the recipe for adding an
//! instrumented stage.

#![warn(missing_docs)]

pub mod archive;
pub mod diff;
pub mod events;
pub mod export;
pub mod flight;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod progress;
pub mod stats;
pub mod trace;

pub use manifest::RunManifest;
pub use metrics::Registry;
pub use trace::{SpanGuard, Subscriber};

/// Version of every JSON artifact this stack writes (reports, metrics
/// exports, manifests, profiles, flight bundles). Bump whenever any
/// exported schema changes shape; `crates/obs/tests/schema_golden.rs`
/// pins the current shapes to this number.
///
/// v3: report tables carry per-row join keys and raw-count statistics
/// (`keys` / `stats` arrays); histogram exports carry p50/p90/p99
/// quantile summaries.
pub const SCHEMA_VERSION: u32 = 3;

/// Emits a structured trace event when a subscriber is installed.
///
/// ```
/// msc_obs::event!("rx.decoded", proto = "ble", tag_bits = 42);
/// let x = [1, 2, 3];
/// msc_obs::event!("debug.dump", value = ?x); // `?` renders with {:?}
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $($fields:tt)*)?) => {
        if $crate::trace::enabled() {
            let __fields: ::std::vec::Vec<$crate::trace::Field> =
                $crate::__obs_fields!(@acc [] $($($fields)*)?);
            $crate::trace::emit($crate::trace::Kind::Event, $name, __fields);
        }
    };
}

/// Opens a timed span; the returned guard emits a `Kind::SpanExit`
/// event carrying `dur_us` when dropped, and opens a [`profile`]
/// frame when the profiler is collecting. Costs two relaxed atomic
/// loads when both tracing and profiling are disabled; the field list
/// is only built when tracing is on.
///
/// ```
/// let _span = msc_obs::span!("pipe.decode", proto = "zigbee");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $($fields:tt)*)?) => {
        if $crate::trace::enabled() {
            let __fields: ::std::vec::Vec<$crate::trace::Field> =
                $crate::__obs_fields!(@acc [] $($($fields)*)?);
            $crate::trace::SpanGuard::enter($name, __fields)
        } else if $crate::profile::enabled() {
            $crate::trace::SpanGuard::profiled_only($name)
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Field-list muncher shared by [`event!`] and [`span!`]: `k = v`
/// renders with `Display`, `k = ?v` with `Debug`. Accumulates field
/// expressions and expands to a single `vec![…]` literal.
#[doc(hidden)]
#[macro_export]
macro_rules! __obs_fields {
    (@acc [$($acc:expr),*]) => { ::std::vec![$($acc),*] };
    (@acc [$($acc:expr),*] $k:ident = ? $v:expr, $($rest:tt)*) => {
        $crate::__obs_fields!(@acc [$($acc,)* $crate::trace::Field::debug(stringify!($k), &$v)] $($rest)*)
    };
    (@acc [$($acc:expr),*] $k:ident = ? $v:expr) => {
        $crate::__obs_fields!(@acc [$($acc,)* $crate::trace::Field::debug(stringify!($k), &$v)])
    };
    (@acc [$($acc:expr),*] $k:ident = $v:expr, $($rest:tt)*) => {
        $crate::__obs_fields!(@acc [$($acc,)* $crate::trace::Field::display(stringify!($k), &$v)] $($rest)*)
    };
    (@acc [$($acc:expr),*] $k:ident = $v:expr) => {
        $crate::__obs_fields!(@acc [$($acc,)* $crate::trace::Field::display(stringify!($k), &$v)])
    };
}

#[cfg(test)]
mod tests {
    use crate::trace::{self, CollectingSubscriber};
    use std::sync::Arc;

    #[test]
    fn macros_are_noops_until_installed_then_capture() {
        let _guard = trace::tests_serial();
        trace::uninstall();
        assert!(!trace::enabled());
        // No subscriber: nothing panics, nothing is recorded.
        crate::event!("noop.event", x = 1);
        {
            let _s = crate::span!("noop.span");
        }

        let sub = Arc::new(CollectingSubscriber::default());
        trace::install(sub.clone());
        assert!(trace::enabled());
        crate::event!("unit.event", a = 2, b = ?vec![1, 2]);
        {
            let _s = crate::span!("unit.span", proto = "ble");
        }
        trace::uninstall();

        let lines = sub.take();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("unit.event") && lines[0].contains("a=2"));
        assert!(lines[0].contains("b=[1, 2]"));
        assert!(lines[1].contains("enter unit.span"));
        assert!(lines[2].contains("exit  unit.span") && lines[2].contains("dur_us="));
    }
}
