//! Estimator statistics for Monte-Carlo cells: Wilson-score confidence
//! intervals on proportions, interval-overlap significance tests, and
//! the converged/undecided verdict the `--ci` table column and
//! `paper diff` build on.
//!
//! Every experiment cell the harness reports is a proportion estimate —
//! errors/trials, hits/trials, lost/sent — and a point estimate alone
//! cannot distinguish "this cell moved because the code changed" from
//! "this cell moved because the seed changed". The [`Proportion`] type
//! carries the raw numerator/denominator through to the report layer so
//! the interval can be recomputed at any confidence level downstream.
//!
//! ## Clustered observations
//!
//! Bit-error counts are not independent draws: all bits of one packet
//! share that packet's fading realization, so the effective number of
//! independent observations is the number of *packets*, not bits. A
//! [`Proportion`] therefore carries a `clusters` count (defaulting to
//! the denominator); the Wilson interval is computed with `clusters` as
//! the sample size while the point estimate stays `num/den`. This makes
//! the intervals conservative for clustered data instead of wildly
//! overconfident — the difference between a diff engine that flags real
//! regressions and one that cries wolf on every reseeded run.

/// Two-sided z for a 95% confidence interval.
pub const Z95: f64 = 1.959964;
/// Two-sided z for a 99% confidence interval (the `paper diff`
/// significance gate: two *disjoint* 99% intervals are a far stronger
/// condition than a single 1%-level test, which keeps the per-suite
/// false-positive rate low across hundreds of cells).
pub const Z99: f64 = 2.575829;

/// Default absolute half-width (at 95%) below which a cell's estimate
/// counts as converged.
pub const CONVERGED_HALF_WIDTH: f64 = 0.05;

/// A closed interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, ordering the bounds.
    pub fn new(a: f64, b: f64) -> Self {
        Interval { lo: a.min(b), hi: a.max(b) }
    }

    /// True when the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Half the interval's width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// The interval scaled by a positive factor (bench-ratio
    /// normalization).
    pub fn scaled(&self, factor: f64) -> Interval {
        Interval::new(self.lo * factor, self.hi * factor)
    }
}

/// A proportion estimate carrying its raw counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Proportion {
    /// Successes / errors / hits — the numerator.
    pub num: u64,
    /// Total observations — the denominator.
    pub den: u64,
    /// Number of independent clusters the observations came from
    /// (packets for bit-level counts). Equals `den` for genuinely
    /// independent draws; the Wilson interval uses this as its sample
    /// size.
    pub clusters: u64,
}

impl Proportion {
    /// An estimate from independent observations.
    pub fn new(num: u64, den: u64) -> Self {
        Proportion { num, den, clusters: den }
    }

    /// An estimate whose observations arrived in `clusters` independent
    /// groups (e.g. bit errors grouped by packet).
    pub fn clustered(num: u64, den: u64, clusters: u64) -> Self {
        Proportion { num, den, clusters }
    }

    /// The point estimate `num/den` (0 when the denominator is 0).
    pub fn p_hat(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// The effective sample size the interval is computed with.
    fn n_eff(&self) -> f64 {
        // Clustered counts cap the information at the cluster count;
        // an inconsistent clusters > den (caller bug) is clamped.
        self.clusters.min(self.den).max(1) as f64
    }

    /// Normal-approximation standard error of the point estimate at the
    /// effective sample size (0 when the denominator is 0).
    pub fn std_err(&self) -> f64 {
        if self.den == 0 {
            return 0.0;
        }
        let p = self.p_hat();
        (p * (1.0 - p) / self.n_eff()).sqrt()
    }

    /// The Wilson score interval at critical value `z`, clamped to
    /// `[0, 1]`. An empty estimate (`den == 0`) returns the vacuous
    /// `[0, 1]`: no data constrains nothing.
    pub fn wilson(&self, z: f64) -> Interval {
        if self.den == 0 {
            return Interval { lo: 0.0, hi: 1.0 };
        }
        let n = self.n_eff();
        let p = self.p_hat();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Interval { lo: (center - half).max(0.0), hi: (center + half).min(1.0) }
    }

    /// True when the 95% interval's half-width is at or below
    /// `max_half_width` — the cell's verdict is decided to that
    /// precision; more trials would only polish it.
    pub fn converged(&self, max_half_width: f64) -> bool {
        self.den > 0 && self.wilson(Z95).half_width() <= max_half_width
    }
}

/// How a cell statistic moved between two runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffClass {
    /// The movement is within joint sampling noise (the `z`-level
    /// Wilson intervals overlap).
    Noise,
    /// The movement exceeds sampling noise (disjoint intervals).
    Significant,
    /// The statistic exists only in the newer run.
    New,
    /// The statistic exists only in the older run.
    Gone,
}

impl DiffClass {
    /// Display label (fixed-width friendly).
    pub fn label(&self) -> &'static str {
        match self {
            DiffClass::Noise => "NOISE",
            DiffClass::Significant => "SIGNIFICANT",
            DiffClass::New => "NEW",
            DiffClass::Gone => "GONE",
        }
    }
}

/// Classifies the movement between two proportion estimates by
/// interval overlap at critical value `z`: overlapping intervals are
/// [`DiffClass::Noise`], disjoint ones [`DiffClass::Significant`].
///
/// Disjointness of two individual `z`-level intervals is a much
/// stronger condition than a single two-proportion test at that level,
/// which is exactly what a regression gate wants: a SIGNIFICANT verdict
/// should survive scrutiny, while anything arguable stays NOISE.
pub fn classify(a: &Proportion, b: &Proportion, z: f64) -> DiffClass {
    if a.wilson(z).overlaps(&b.wilson(z)) {
        DiffClass::Noise
    } else {
        DiffClass::Significant
    }
}

/// Jain's fairness index over a set of per-entity allocations:
/// `(Σx)² / (n · Σx²)`. Ranges from `1/n` (one entity gets everything)
/// to `1.0` (perfectly equal shares). Degenerate inputs — an empty
/// slice or all-zero allocations, where every share is equally zero —
/// report `1.0`.
pub fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_hand_computed_values() {
        // 3/10 at 95%: the canonical worked example — Wilson gives
        // approximately [0.108, 0.603].
        let p = Proportion::new(3, 10);
        let ci = p.wilson(Z95);
        assert!((ci.lo - 0.1078).abs() < 1e-3, "lo {}", ci.lo);
        assert!((ci.hi - 0.6032).abs() < 1e-3, "hi {}", ci.hi);
        assert!((p.p_hat() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_and_full_counts_stay_in_unit_interval() {
        let zero = Proportion::new(0, 12).wilson(Z95);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.5, "hi {}", zero.hi);
        let full = Proportion::new(12, 12).wilson(Z95);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo > 0.5, "lo {}", full.lo);
    }

    #[test]
    fn empty_estimate_is_vacuous_and_unconverged() {
        let e = Proportion::new(0, 0);
        assert_eq!(e.wilson(Z95), Interval { lo: 0.0, hi: 1.0 });
        assert_eq!(e.p_hat(), 0.0);
        assert_eq!(e.std_err(), 0.0);
        assert!(!e.converged(0.5));
    }

    #[test]
    fn clustering_widens_the_interval() {
        // 50/1000 bits from 10 packets: the interval must be computed
        // at n=10, far wider than the iid-bits n=1000 interval.
        let iid = Proportion::new(50, 1000);
        let clustered = Proportion::clustered(50, 1000, 10);
        assert_eq!(iid.p_hat(), clustered.p_hat());
        assert!(clustered.wilson(Z95).half_width() > 3.0 * iid.wilson(Z95).half_width());
        assert!(clustered.std_err() > 3.0 * iid.std_err());
    }

    #[test]
    fn interval_overlap_and_classification() {
        let a = Interval::new(0.1, 0.3);
        assert!(a.overlaps(&Interval::new(0.3, 0.5)));
        assert!(!a.overlaps(&Interval::new(0.31, 0.5)));
        assert!(a.overlaps(&Interval::new(0.0, 1.0)));
        // Same counts: trivially noise.
        let p = Proportion::new(2, 12);
        assert_eq!(classify(&p, &p, Z99), DiffClass::Noise);
        // 0/12 vs 12/12: unambiguously significant.
        assert_eq!(
            classify(&Proportion::new(0, 12), &Proportion::new(12, 12), Z99),
            DiffClass::Significant
        );
        // 2/12 vs 5/12: a seed-sized wobble, noise at 99%.
        assert_eq!(
            classify(&Proportion::new(2, 12), &Proportion::new(5, 12), Z99),
            DiffClass::Noise
        );
    }

    #[test]
    fn convergence_tracks_sample_size() {
        assert!(!Proportion::new(1, 10).converged(CONVERGED_HALF_WIDTH));
        assert!(Proportion::new(50, 1000).converged(CONVERGED_HALF_WIDTH));
        // Clustering blocks convergence even with many observations.
        assert!(!Proportion::clustered(50, 1000, 8).converged(CONVERGED_HALF_WIDTH));
    }

    #[test]
    fn scaled_interval_normalizes_ratios() {
        let i = Interval::new(10.0, 20.0).scaled(0.5);
        assert_eq!(i, Interval { lo: 5.0, hi: 10.0 });
        assert_eq!(i.half_width(), 2.5);
    }

    #[test]
    fn jain_spans_equal_to_monopolized() {
        assert!((jain(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12, "equal shares");
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12, "monopoly = 1/n");
        // 2:1 split across two entities: 9 / (2·5) = 0.9.
        assert!((jain(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
        // Scale-invariant.
        assert!((jain(&[20.0, 10.0]) - jain(&[2.0, 1.0])).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs_are_fair() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0, 0.0]), 1.0);
    }
}
