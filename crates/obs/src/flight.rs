//! Flight recorder: bounded ring of recent per-trial context with
//! replayable failure bundles.
//!
//! When armed ([`arm`]), the simulation layer feeds the recorder one
//! [`TrialRecord`] per Monte-Carlo trial — the experiment cell, the
//! base and derived RNG seeds, per-stage timings, and the matcher /
//! decode scores that produced the verdict. Records land in a bounded
//! ring (recent history for postmortems); trials whose verdict is not
//! `"ok"`, or whose slowest stage exceeds the configured threshold,
//! are additionally captured as *dumps* — each convertible to a
//! replayable JSON bundle ([`bundle_to_json`]) that `paper replay`
//! feeds back through [`parse_bundle`].
//!
//! Replay leans entirely on the workspace's seed-derivation contract:
//! a trial is fully determined by `(experiment, n, seed, cell, index)`
//! because its RNG is seeded from
//! `derive_seed(seed, hash_label(cell), index)` and never draws from a
//! shared stream. The recorder itself only observes — it never touches
//! RNG state, so arming it cannot change results.

use crate::export::{json_escape, parse_json};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Whether the recorder is armed (the per-trial fast path).
static ARMED: AtomicBool = AtomicBool::new(false);

/// Recorder knobs.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Ring capacity: how many recent trials to keep (0 disables the
    /// ring but keeps failure dumps).
    pub ring: usize,
    /// Stage-time threshold in µs: any stage slower than this marks
    /// the trial as a `slow_stage` dump (`paper --flight-slow-us`).
    pub slow_stage_us: f64,
    /// Cap on retained dumps per run; excess failures only bump the
    /// suppressed counter so pathological cells can't flood the disk.
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { ring: 256, slow_stage_us: f64::INFINITY, max_dumps: 32 }
    }
}

/// Everything the recorder keeps about one finished trial.
#[derive(Clone, Debug)]
pub struct TrialRecord {
    /// Experiment id (`fig13`) — the replay dispatch key.
    pub experiment: String,
    /// Cell label within the experiment (`los/BLE/32`).
    pub cell: String,
    /// Trial index within the cell.
    pub index: u64,
    /// The run's base seed.
    pub seed: u64,
    /// The trial's derived RNG seed (recorded for the bundle; replay
    /// re-derives it and the two must agree).
    pub derived_seed: u64,
    /// Protocol label, `""` when not applicable.
    pub protocol: &'static str,
    /// Per-stage wall-clock, µs, in execution order.
    pub stages: Vec<(&'static str, f64)>,
    /// Scores that produced the verdict (matcher scores, error
    /// counts) — the values replay must reproduce exactly.
    pub scores: Vec<(&'static str, f64)>,
    /// `"ok"`, `"decode_fail"`, `"id_miss"`, …
    pub verdict: String,
}

/// One captured failure: the trigger plus the full trial record.
#[derive(Clone, Debug)]
pub struct Dump {
    /// Why this trial was captured (`decode_fail`, `id_miss`,
    /// `slow_stage:<name>`).
    pub reason: String,
    /// The trial itself.
    pub record: TrialRecord,
}

/// Recorder totals for the final metrics export.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlightStats {
    /// Trials observed since arming.
    pub trials: u64,
    /// Dumps currently retained.
    pub dumps: u64,
    /// Failures beyond `max_dumps` that were counted but not kept.
    pub suppressed: u64,
    /// Records currently in the ring.
    pub ring_len: u64,
}

#[derive(Default)]
struct State {
    cfg: FlightConfig,
    ring: VecDeque<TrialRecord>,
    dumps: Vec<Dump>,
    suppressed: u64,
    trials: u64,
    /// `(cell, index)` a replay run wants captured.
    target: Option<(String, u64)>,
    captured: Option<TrialRecord>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

thread_local! {
    static CURRENT: RefCell<Option<TrialRecord>> = const { RefCell::new(None) };
}

/// Arms the recorder with `cfg`, discarding any previous state
/// (including a replay target — set it after arming).
pub fn arm(cfg: FlightConfig) {
    let mut s = state().lock().unwrap();
    *s = State { cfg, ..State::default() };
    ARMED.store(true, Ordering::Release);
}

/// Disarms the recorder. Collected dumps stay until [`take_dumps`].
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// The per-trial fast path: true when armed.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Opens the current thread's trial record. Pair with [`end_trial`].
#[allow(clippy::too_many_arguments)]
pub fn begin_trial(
    experiment: &str,
    cell: &str,
    index: u64,
    seed: u64,
    derived_seed: u64,
    protocol: &'static str,
) {
    if !armed() {
        return;
    }
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(TrialRecord {
            experiment: experiment.to_string(),
            cell: cell.to_string(),
            index,
            seed,
            derived_seed,
            protocol,
            stages: Vec::new(),
            scores: Vec::new(),
            verdict: String::new(),
        });
    });
}

/// Appends a stage timing to the open trial (no-op outside a trial —
/// `time_stage` also covers per-cell work like carrier synthesis).
pub fn note_stage(stage: &'static str, us: f64) {
    if !armed() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.stages.push((stage, us));
        }
    });
}

/// Appends a named score to the open trial.
pub fn note_score(name: &'static str, value: f64) {
    if !armed() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.scores.push((name, value));
        }
    });
}

/// Closes the open trial with `verdict`, pushing it through the ring,
/// the dump trigger, and the replay-capture check.
pub fn end_trial(verdict: &str) {
    if !armed() {
        return;
    }
    let Some(mut rec) = CURRENT.with(|c| c.borrow_mut().take()) else {
        return;
    };
    rec.verdict = verdict.to_string();

    let mut s = state().lock().unwrap();
    s.trials += 1;
    if let Some((tc, ti)) = &s.target {
        if *tc == rec.cell && *ti == rec.index {
            s.captured = Some(rec.clone());
        }
    }
    let reason = if rec.verdict != "ok" {
        Some(rec.verdict.clone())
    } else {
        rec.stages
            .iter()
            .find(|&&(_, us)| us > s.cfg.slow_stage_us)
            .map(|&(stage, _)| format!("slow_stage:{stage}"))
    };
    if let Some(reason) = reason {
        if s.dumps.len() < s.cfg.max_dumps {
            s.dumps.push(Dump { reason, record: rec.clone() });
        } else {
            s.suppressed += 1;
        }
    }
    if s.cfg.ring > 0 {
        if s.ring.len() == s.cfg.ring {
            s.ring.pop_front();
        }
        s.ring.push_back(rec);
    }
}

/// Drains the retained dumps, sorted by `(cell, index)` so the files a
/// run writes are deterministic regardless of worker interleaving.
pub fn take_dumps() -> Vec<Dump> {
    let mut dumps = std::mem::take(&mut state().lock().unwrap().dumps);
    dumps.sort_by(|a, b| {
        (a.record.cell.as_str(), a.record.index).cmp(&(b.record.cell.as_str(), b.record.index))
    });
    dumps
}

/// Recorder totals (exported as gauges at the end of a run).
pub fn stats() -> FlightStats {
    let s = state().lock().unwrap();
    FlightStats {
        trials: s.trials,
        dumps: s.dumps.len() as u64,
        suppressed: s.suppressed,
        ring_len: s.ring.len() as u64,
    }
}

/// Marks `(cell, index)` for capture: the matching trial's record is
/// kept for [`take_captured`] even if its verdict is `"ok"`.
pub fn set_replay_target(cell: String, index: u64) {
    let mut s = state().lock().unwrap();
    s.target = Some((cell, index));
    s.captured = None;
}

/// The `(cell, index)` a replay run wants, if any. Cheap when the
/// recorder is disarmed.
pub fn replay_target() -> Option<(String, u64)> {
    if !armed() {
        return None;
    }
    state().lock().unwrap().target.clone()
}

/// Clears the replay target.
pub fn clear_replay_target() {
    state().lock().unwrap().target = None;
}

/// Takes the record captured for the replay target, if the trial ran.
pub fn take_captured() -> Option<TrialRecord> {
    state().lock().unwrap().captured.take()
}

/// A parsed replay bundle: everything needed to re-run one trial.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// Experiment id to dispatch.
    pub experiment: String,
    /// Cell label of the target trial.
    pub cell: String,
    /// Trial index within the cell.
    pub index: u64,
    /// The original run's `n` argument.
    pub n: usize,
    /// The original run's base seed.
    pub seed: u64,
    /// Why the original trial was dumped.
    pub reason: String,
    /// The original verdict (replay must reproduce it).
    pub verdict: String,
    /// The original scores (replay must reproduce them).
    pub scores: Vec<(String, f64)>,
}

/// Serializes a dump as a replayable bundle. `n` is the originating
/// run's trials-per-cell argument — together with the record's seed it
/// pins the exact configuration the trial ran under.
pub fn bundle_to_json(dump: &Dump, n: usize) -> String {
    let r = &dump.record;
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"kind\": \"flight_bundle\",\n",
        crate::SCHEMA_VERSION
    ));
    out.push_str(&format!("  \"reason\": \"{}\",\n", json_escape(&dump.reason)));
    out.push_str(&format!("  \"experiment\": \"{}\",\n", json_escape(&r.experiment)));
    out.push_str(&format!("  \"cell\": \"{}\",\n", json_escape(&r.cell)));
    out.push_str(&format!("  \"index\": {},\n", r.index));
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"derived_seed\": {},\n", r.derived_seed));
    out.push_str(&format!("  \"protocol\": \"{}\",\n", json_escape(r.protocol)));
    out.push_str("  \"stages\": [");
    for (i, (stage, us)) in r.stages.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[\"{}\", {us:.1}]", json_escape(stage)));
    }
    out.push_str("],\n  \"scores\": [");
    for (i, (name, value)) in r.scores.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[\"{}\", {value}]", json_escape(name)));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"verdict\": \"{}\"\n", json_escape(&r.verdict)));
    out.push_str("}\n");
    out
}

/// Parses a bundle written by [`bundle_to_json`].
pub fn parse_bundle(text: &str) -> Result<Bundle, String> {
    let json = parse_json(text)?;
    let kind = json.get("kind").and_then(|k| k.as_str()).unwrap_or_default();
    if kind != "flight_bundle" {
        return Err(format!("not a flight bundle (kind {kind:?})"));
    }
    let str_field = |name: &str| -> Result<String, String> {
        json.get(name)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| format!("bundle missing string field {name:?}"))
    };
    let num_field = |name: &str| -> Result<f64, String> {
        json.get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("bundle missing numeric field {name:?}"))
    };
    let mut scores = Vec::new();
    if let Some(arr) = json.get("scores").and_then(|v| v.as_arr()) {
        for pair in arr {
            let entry = pair.as_arr().ok_or("malformed score entry")?;
            match (entry.first().and_then(|e| e.as_str()), entry.get(1).and_then(|e| e.as_f64())) {
                (Some(name), Some(value)) => scores.push((name.to_string(), value)),
                _ => return Err("malformed score entry".to_string()),
            }
        }
    }
    Ok(Bundle {
        experiment: str_field("experiment")?,
        cell: str_field("cell")?,
        index: num_field("index")? as u64,
        n: num_field("n")? as usize,
        seed: num_field("seed")? as u64,
        reason: str_field("reason")?,
        verdict: str_field("verdict")?,
        scores,
    })
}

/// Serializes tests that manipulate the global recorder state.
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(cell: &str, index: u64, verdict: &str) {
        begin_trial("unit", cell, index, 42, 1000 + index, "BLE");
        note_stage("modulate", 12.5);
        note_stage("decode", 250.0);
        note_score("tag_errors", if verdict == "ok" { 0.0 } else { 3.0 });
        end_trial(verdict);
    }

    #[test]
    fn failures_dump_and_ring_stays_bounded() {
        let _guard = tests_serial();
        arm(FlightConfig { ring: 4, ..FlightConfig::default() });
        for i in 0..10 {
            trial("cell/a", i, if i == 7 { "decode_fail" } else { "ok" });
        }
        let stats = stats();
        assert_eq!(stats.trials, 10);
        assert_eq!(stats.ring_len, 4, "ring must stay bounded");
        let dumps = take_dumps();
        disarm();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "decode_fail");
        assert_eq!(dumps[0].record.index, 7);
        assert_eq!(dumps[0].record.stages.len(), 2);
    }

    #[test]
    fn slow_stage_threshold_and_dump_cap() {
        let _guard = tests_serial();
        arm(FlightConfig { slow_stage_us: 100.0, max_dumps: 2, ..FlightConfig::default() });
        for i in 0..5 {
            trial("cell/slow", i, "ok"); // decode stage is 250 µs > 100
        }
        let stats = stats();
        assert_eq!(stats.dumps, 2, "dump cap");
        assert_eq!(stats.suppressed, 3);
        let dumps = take_dumps();
        disarm();
        assert!(dumps.iter().all(|d| d.reason == "slow_stage:decode"));
    }

    #[test]
    fn disarmed_recorder_observes_nothing() {
        let _guard = tests_serial();
        arm(FlightConfig::default());
        disarm();
        trial("cell/x", 0, "decode_fail");
        assert_eq!(stats().trials, 0);
        assert!(take_dumps().is_empty());
    }

    #[test]
    fn replay_target_captures_ok_trials_too() {
        let _guard = tests_serial();
        arm(FlightConfig::default());
        set_replay_target("cell/b".to_string(), 3);
        assert_eq!(replay_target(), Some(("cell/b".to_string(), 3)));
        for i in 0..5 {
            trial("cell/b", i, "ok");
        }
        clear_replay_target();
        let captured = take_captured().expect("target trial captured");
        disarm();
        let _ = take_dumps();
        assert_eq!(captured.index, 3);
        assert_eq!(captured.verdict, "ok");
        assert_eq!(captured.scores, vec![("tag_errors", 0.0)]);
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let dump = Dump {
            reason: "decode_fail".to_string(),
            record: TrialRecord {
                experiment: "fig13".to_string(),
                cell: "los/BLE/32".to_string(),
                index: 5,
                seed: 42,
                derived_seed: 0xDEAD_BEEF,
                protocol: "BLE",
                stages: vec![("modulate", 10.0), ("decode", 300.5)],
                scores: vec![("tag_errors", 7.0), ("tag_bits", 16.0)],
                verdict: "decode_fail".to_string(),
            },
        };
        let json = bundle_to_json(&dump, 24);
        let bundle = parse_bundle(&json).expect("parse bundle");
        assert_eq!(bundle.experiment, "fig13");
        assert_eq!(bundle.cell, "los/BLE/32");
        assert_eq!(bundle.index, 5);
        assert_eq!(bundle.n, 24);
        assert_eq!(bundle.seed, 42);
        assert_eq!(bundle.reason, "decode_fail");
        assert_eq!(bundle.verdict, "decode_fail");
        assert_eq!(
            bundle.scores,
            vec![("tag_errors".to_string(), 7.0), ("tag_bits".to_string(), 16.0)]
        );
        assert!(parse_bundle("{\"kind\": \"other\"}").is_err());
    }
}
