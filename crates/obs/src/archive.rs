//! Content-addressed run archive: every `--metrics-out` run's report
//! tables are stored under `<dir>/archive/` keyed by *what produced
//! them* — experiment id, RNG seed, git revision, and a hash of every
//! result-affecting config knob — so `paper diff --baseline` can find
//! "the newest comparable run" without the caller bookkeeping paths.
//!
//! The key is deliberately **thread-count independent**: reports are
//! byte-identical at any worker-pool size (the `msc-par` determinism
//! contract), so two runs differing only in `--threads` are the *same*
//! result and must collide in the archive. Anything that can move a
//! cell — trial count, the `--full` preset, perturbation env knobs —
//! feeds the config hash.
//!
//! Layout:
//!
//! ```text
//! <metrics-out>/archive/
//!   index.jsonl            one line per stored run (key + timestamp + file)
//!   runs/<exp>@<seed>@<git8>@<confighash16>.json   the report table JSON
//! ```
//!
//! Storing an already-present key overwrites it (same inputs → same
//! result; the newer timestamp wins). [`Archive::prune`] bounds the
//! archive at a per-experiment cap, dropping oldest-first.

use crate::export::{json_escape, parse_json};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit over a byte string (no external deps; stable across
/// platforms and runs, which is what makes the key content-addressed).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a set of `(knob, value)` config parts order-insensitively:
/// parts are sorted by knob name before hashing, so call sites don't
/// have to agree on ordering. Thread count must never be passed here.
pub fn config_hash(parts: &[(&str, String)]) -> u64 {
    let mut sorted: Vec<(&str, &str)> = parts.iter().map(|(k, v)| (*k, v.as_str())).collect();
    sorted.sort();
    let mut buf = String::new();
    for (k, v) in sorted {
        let _ = write!(buf, "{k}\x1f{v}\x1e");
    }
    fnv1a(buf.as_bytes())
}

/// The content address of one archived run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunKey {
    /// Experiment id (`fig13`, `ext-fec`, …).
    pub experiment: String,
    /// Root RNG seed.
    pub seed: u64,
    /// Git revision of the producing tree.
    pub git_rev: String,
    /// Hash of every result-affecting config knob ([`config_hash`]).
    pub config_hash: u64,
}

impl RunKey {
    /// Builds a key, hashing the config parts.
    pub fn new(
        experiment: impl Into<String>,
        seed: u64,
        git_rev: impl Into<String>,
        config: &[(&str, String)],
    ) -> Self {
        RunKey {
            experiment: experiment.into(),
            seed,
            git_rev: git_rev.into(),
            config_hash: config_hash(config),
        }
    }

    /// The filesystem stem this key stores under. Experiment ids are
    /// `[a-z0-9-]` by construction; the git rev is truncated to 8 hex
    /// chars (the full rev lives in the index line).
    pub fn file_stem(&self) -> String {
        let git8: String = self.git_rev.chars().take(8).collect();
        format!("{}@{}@{}@{:016x}", self.experiment, self.seed, git8, self.config_hash)
    }
}

/// One line of `index.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexEntry {
    /// The run's content address.
    pub key: RunKey,
    /// Unix timestamp (seconds) the run was archived.
    pub created_unix_s: u64,
    /// Report file, relative to the archive root (`runs/<stem>.json`).
    pub file: String,
}

impl IndexEntry {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"experiment\":\"{}\",\"seed\":{},\"git_rev\":\"{}\",\"config_hash\":\"{:016x}\",\"created_unix_s\":{},\"file\":\"{}\"}}",
            json_escape(&self.key.experiment),
            self.key.seed,
            json_escape(&self.key.git_rev),
            self.key.config_hash,
            self.created_unix_s,
            json_escape(&self.file),
        )
    }

    fn from_json_line(line: &str) -> Option<IndexEntry> {
        let v = parse_json(line).ok()?;
        Some(IndexEntry {
            key: RunKey {
                experiment: v.get("experiment")?.as_str()?.to_string(),
                seed: v.get("seed")?.as_f64()? as u64,
                git_rev: v.get("git_rev")?.as_str()?.to_string(),
                config_hash: u64::from_str_radix(v.get("config_hash")?.as_str()?, 16).ok()?,
            },
            created_unix_s: v.get("created_unix_s")?.as_f64()? as u64,
            file: v.get("file")?.as_str()?.to_string(),
        })
    }
}

/// A run archive rooted at `<metrics-out>/archive/`.
#[derive(Clone, Debug)]
pub struct Archive {
    root: PathBuf,
}

impl Archive {
    /// Opens (without creating) the archive under a `--metrics-out`
    /// directory.
    pub fn open(metrics_out: &Path) -> Self {
        Archive { root: metrics_out.join("archive") }
    }

    /// The archive root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Every index entry, oldest first (file order; ties and malformed
    /// lines are skipped, not fatal — the archive is a cache, never a
    /// source of truth).
    pub fn entries(&self) -> Vec<IndexEntry> {
        let Ok(body) = std::fs::read_to_string(self.root.join("index.jsonl")) else {
            return Vec::new();
        };
        body.lines().filter_map(IndexEntry::from_json_line).collect()
    }

    /// Stores one run's report JSON under its key, replacing any
    /// existing entry with the same key. Returns the report path.
    pub fn store(
        &self,
        key: &RunKey,
        report_json: &str,
        created_unix_s: u64,
    ) -> io::Result<PathBuf> {
        let runs = self.root.join("runs");
        std::fs::create_dir_all(&runs)?;
        let file = format!("runs/{}.json", key.file_stem());
        let path = self.root.join(&file);
        std::fs::write(&path, report_json)?;
        let mut entries: Vec<IndexEntry> =
            self.entries().into_iter().filter(|e| &e.key != key).collect();
        entries.push(IndexEntry { key: key.clone(), created_unix_s, file });
        self.write_index(&entries)?;
        Ok(path)
    }

    /// Reads an archived report back.
    pub fn load(&self, entry: &IndexEntry) -> io::Result<String> {
        std::fs::read_to_string(self.root.join(&entry.file))
    }

    /// The newest archived run comparable to `key` — same experiment,
    /// but not the identical key (a run never baselines against
    /// itself). Entries sharing the config hash are preferred (same
    /// knobs, different code or seed); otherwise the newest
    /// same-experiment entry of any config is returned.
    pub fn latest_baseline(&self, key: &RunKey) -> Option<IndexEntry> {
        let mut candidates: Vec<IndexEntry> = self
            .entries()
            .into_iter()
            .filter(|e| e.key.experiment == key.experiment && &e.key != key)
            .collect();
        candidates.sort_by_key(|e| e.created_unix_s);
        candidates
            .iter()
            .rev()
            .find(|e| e.key.config_hash == key.config_hash)
            .or(candidates.last())
            .cloned()
    }

    /// Drops oldest entries beyond `max_per_experiment` (report file +
    /// index line). Returns the number of runs removed.
    pub fn prune(&self, max_per_experiment: usize) -> io::Result<usize> {
        let mut entries = self.entries();
        if entries.is_empty() {
            return Ok(0);
        }
        // Newest-first within each experiment; keep the first
        // `max_per_experiment` of each.
        entries.sort_by_key(|e| std::cmp::Reverse(e.created_unix_s));
        let mut kept: Vec<IndexEntry> = Vec::new();
        let mut removed = 0usize;
        for e in entries {
            let seen = kept.iter().filter(|k| k.key.experiment == e.key.experiment).count();
            if seen < max_per_experiment {
                kept.push(e);
            } else {
                let _ = std::fs::remove_file(self.root.join(&e.file));
                removed += 1;
            }
        }
        if removed > 0 {
            // Restore oldest-first file order for the rewritten index.
            kept.sort_by_key(|e| e.created_unix_s);
            self.write_index(&kept)?;
        }
        Ok(removed)
    }

    fn write_index(&self, entries: &[IndexEntry]) -> io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        let mut body = String::new();
        for e in entries {
            body.push_str(&e.to_json_line());
            body.push('\n');
        }
        std::fs::write(self.root.join("index.jsonl"), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("msc_archive_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg(n: usize, full: bool) -> Vec<(&'static str, String)> {
        vec![("n", n.to_string()), ("full", full.to_string())]
    }

    #[test]
    fn store_load_round_trips_and_overwrites() {
        let dir = tmpdir("roundtrip");
        let ar = Archive::open(&dir);
        let key = RunKey::new("fig13", 42, "deadbeefcafe", &cfg(12, false));
        ar.store(&key, "{\"v\":1}", 100).unwrap();
        ar.store(&key, "{\"v\":2}", 200).unwrap();
        let entries = ar.entries();
        assert_eq!(entries.len(), 1, "same key overwrites, never duplicates");
        assert_eq!(entries[0].created_unix_s, 200);
        assert_eq!(ar.load(&entries[0]).unwrap(), "{\"v\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_prefers_same_config_then_newest() {
        let dir = tmpdir("baseline");
        let ar = Archive::open(&dir);
        let old_rev = RunKey::new("fig13", 42, "aaaa0000", &cfg(12, false));
        let other_cfg = RunKey::new("fig13", 42, "bbbb1111", &cfg(60, true));
        let current = RunKey::new("fig13", 42, "cccc2222", &cfg(12, false));
        ar.store(&old_rev, "old", 100).unwrap();
        ar.store(&other_cfg, "other", 300).unwrap();
        ar.store(&current, "cur", 400).unwrap();
        // Same config hash as `current` even though `other_cfg` is newer.
        let base = ar.latest_baseline(&current).expect("baseline");
        assert_eq!(base.key, old_rev);
        // No same-config candidate → newest other entry.
        let lonely = RunKey::new("fig13", 7, "cccc2222", &cfg(24, false));
        let fallback = ar.latest_baseline(&lonely).expect("fallback");
        assert_eq!(fallback.key, current);
        // Never itself; a different experiment finds nothing.
        let foreign = RunKey::new("fig5", 42, "cccc2222", &cfg(12, false));
        ar.store(&foreign, "x", 500).unwrap();
        let base = ar.latest_baseline(&foreign);
        assert!(base.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_per_experiment() {
        let dir = tmpdir("prune");
        let ar = Archive::open(&dir);
        for (i, rev) in ["r1", "r2", "r3", "r4"].iter().enumerate() {
            let key = RunKey::new("fig13", 42, *rev, &cfg(12, false));
            ar.store(&key, "x", 100 + i as u64).unwrap();
        }
        let other = RunKey::new("fig5", 42, "r1", &cfg(12, false));
        ar.store(&other, "y", 50).unwrap();
        let removed = ar.prune(2).unwrap();
        assert_eq!(removed, 2);
        let entries = ar.entries();
        assert_eq!(entries.len(), 3);
        let fig13: Vec<_> = entries.iter().filter(|e| e.key.experiment == "fig13").collect();
        assert_eq!(fig13.len(), 2);
        assert!(fig13.iter().all(|e| e.created_unix_s >= 102), "oldest dropped first");
        assert!(
            entries.iter().any(|e| e.key.experiment == "fig5"),
            "per-experiment cap never evicts other experiments"
        );
        // Pruned files are gone from disk too.
        assert_eq!(std::fs::read_dir(ar.root().join("runs")).unwrap().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
