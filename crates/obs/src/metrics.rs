//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by `(experiment, protocol, stage)`.
//!
//! Recording goes through free functions ([`counter_add`],
//! [`gauge_set`], [`hist_observe`], [`time_stage`]) that early-return on
//! one relaxed atomic load while metrics are disabled — instrumentation
//! stays in hot paths at zero practical cost. The *experiment* label is
//! ambient (set once per run via [`set_experiment`]) so DSP-layer code
//! doesn't need to thread experiment identity through its signatures.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Enables metric recording.
pub fn enable() {
    METRICS_ON.store(true, Ordering::Release);
}

/// Disables metric recording (records become no-ops again).
pub fn disable() {
    METRICS_ON.store(false, Ordering::Release);
}

/// True when metrics are being recorded (the fast-path check).
#[inline(always)]
pub fn enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

fn experiment_slot() -> &'static RwLock<String> {
    static SLOT: OnceLock<RwLock<String>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(String::new()))
}

/// Sets the ambient experiment label attached to subsequent records.
pub fn set_experiment(id: &str) {
    *experiment_slot().write().unwrap() = id.to_string();
}

/// The current ambient experiment label.
pub fn current_experiment() -> String {
    experiment_slot().read().unwrap().clone()
}

/// The label triple every metric is keyed by.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name (`layer.thing`).
    pub name: &'static str,
    /// Ambient experiment id (`fig13`, `tab1`, … or `""`).
    pub experiment: String,
    /// Protocol label (`802.11b`, `BLE`, … or `""`).
    pub protocol: &'static str,
    /// Pipeline stage (`carrier`, `decode`, … or `""`).
    pub stage: &'static str,
}

/// One metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Monotonic counter (saturating).
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// A fixed-bucket histogram: counts per bucket plus moment summaries.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges (a value `v` lands in the first bucket with
    /// `v <= edge`; larger values land in the overflow slot).
    pub edges: &'static [f64],
    /// Per-bucket counts; `counts.len() == edges.len() + 1`, the last
    /// slot being overflow.
    pub counts: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Histogram {
    fn new(edges: &'static [f64]) -> Self {
        Histogram {
            edges,
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    fn observe(&mut self, v: f64) {
        let slot = self.edges.iter().position(|&e| v <= e).unwrap_or(self.edges.len());
        self.counts[slot] = self.counts[slot].saturating_add(1);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count = self.count.saturating_add(1);
        self.sum += v;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), linearly interpolated
    /// within the containing bucket and clamped to the observed
    /// `[min, max]`. The first bucket interpolates from `min`, the
    /// overflow bucket toward `max` — so the estimate never invents
    /// values outside what was actually observed. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if rank <= next as f64 {
                let lo = if slot == 0 { self.min } else { self.edges[slot - 1].max(self.min) };
                let hi =
                    if slot < self.edges.len() { self.edges[slot].min(self.max) } else { self.max };
                let frac = (rank - cum as f64) / c as f64;
                return (lo + (hi - lo).max(0.0) * frac).clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }
}

/// One exported metric record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The label triple plus name.
    pub key: Key,
    /// The value at snapshot time.
    pub value: Value,
}

/// Internal storage slot. Counters are plain atomics so the increment
/// path never takes an exclusive lock; gauges and histograms carry their
/// own fine-grained locks. The map itself sits behind an `RwLock` that is
/// write-locked only when a *new* key is first inserted — steady-state
/// recording from parallel Monte-Carlo workers is read-lock + per-slot
/// atomic/mutex, so workers don't serialize on one registry mutex.
enum Slot {
    Counter(AtomicU64),
    Gauge(Mutex<f64>),
    Histogram(Mutex<Histogram>),
}

impl Slot {
    fn to_value(&self) -> Value {
        match self {
            Slot::Counter(c) => Value::Counter(c.load(Ordering::Relaxed)),
            Slot::Gauge(g) => Value::Gauge(*g.lock().unwrap()),
            Slot::Histogram(h) => Value::Histogram(h.lock().unwrap().clone()),
        }
    }
}

/// Saturating add on an atomic counter (CAS loop near the ceiling, plain
/// `fetch_add` otherwise — overflow is 2^64 events away in practice).
fn atomic_saturating_add(c: &AtomicU64, delta: u64) {
    let mut cur = c.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(delta);
        match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The metric store. Usually used through [`Registry::global`] and the
/// free recording functions, but owned registries work too (tests).
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<Key, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Adds `delta` to a counter (saturating at `u64::MAX`). Lock-free on
    /// the increment path once the counter exists.
    pub fn counter_add(&self, key: Key, delta: u64) {
        {
            let map = self.inner.read().unwrap();
            if let Some(slot) = map.get(&key) {
                match slot {
                    Slot::Counter(c) => atomic_saturating_add(c, delta),
                    _ => panic!("metric type mismatch: counter_add on non-counter"),
                }
                return;
            }
        }
        let mut map = self.inner.write().unwrap();
        match map.entry(key).or_insert_with(|| Slot::Counter(AtomicU64::new(0))) {
            Slot::Counter(c) => atomic_saturating_add(c, delta),
            _ => panic!("metric type mismatch: counter_add on non-counter"),
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, key: Key, value: f64) {
        {
            let map = self.inner.read().unwrap();
            if let Some(slot) = map.get(&key) {
                match slot {
                    Slot::Gauge(g) => *g.lock().unwrap() = value,
                    _ => panic!("metric type mismatch: gauge_set on non-gauge"),
                }
                return;
            }
        }
        let mut map = self.inner.write().unwrap();
        match map.entry(key).or_insert_with(|| Slot::Gauge(Mutex::new(0.0))) {
            Slot::Gauge(g) => *g.get_mut().unwrap() = value,
            _ => panic!("metric type mismatch: gauge_set on non-gauge"),
        }
    }

    /// Observes one histogram sample.
    pub fn hist_observe(&self, key: Key, value: f64, edges: &'static [f64]) {
        {
            let map = self.inner.read().unwrap();
            if let Some(slot) = map.get(&key) {
                match slot {
                    Slot::Histogram(h) => h.lock().unwrap().observe(value),
                    _ => panic!("metric type mismatch: hist_observe on non-histogram"),
                }
                return;
            }
        }
        let mut map = self.inner.write().unwrap();
        match map.entry(key).or_insert_with(|| Slot::Histogram(Mutex::new(Histogram::new(edges)))) {
            Slot::Histogram(h) => h.get_mut().unwrap().observe(value),
            _ => panic!("metric type mismatch: hist_observe on non-histogram"),
        }
    }

    /// A sorted snapshot of every metric. Export order stays
    /// deterministic (BTreeMap key order) regardless of how many workers
    /// recorded concurrently.
    pub fn snapshot(&self) -> Vec<Record> {
        self.inner
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| Record { key: k.clone(), value: v.to_value() })
            .collect()
    }

    /// Clears all metrics (start of a run; tests).
    pub fn reset(&self) {
        self.inner.write().unwrap().clear();
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// True when no metrics are recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().unwrap().is_empty()
    }
}

fn key(name: &'static str, protocol: &'static str, stage: &'static str) -> Key {
    Key { name, experiment: current_experiment(), protocol, stage }
}

/// Adds `delta` to the named global counter; no-op while disabled.
#[inline]
pub fn counter_add(name: &'static str, protocol: &'static str, stage: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    Registry::global().counter_add(key(name, protocol, stage), delta);
}

/// Sets the named global gauge; no-op while disabled.
#[inline]
pub fn gauge_set(name: &'static str, protocol: &'static str, stage: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    Registry::global().gauge_set(key(name, protocol, stage), value);
}

/// Observes one sample of the named global histogram; no-op while
/// disabled.
#[inline]
pub fn hist_observe(
    name: &'static str,
    protocol: &'static str,
    stage: &'static str,
    value: f64,
    edges: &'static [f64],
) {
    if !enabled() {
        return;
    }
    Registry::global().hist_observe(key(name, protocol, stage), value, edges);
}

/// Runs `f`, recording its wall-clock into the `pipe.stage_us`
/// histogram for `(protocol, stage)` when metrics are enabled, into
/// the current [`crate::profile`] tree as a named frame when the
/// profiler is collecting, and into the open [`crate::flight`] trial
/// when the recorder is armed. The fully-disabled path calls `f`
/// directly — no clock read, three relaxed atomic loads.
#[inline]
pub fn time_stage<T>(protocol: &'static str, stage: &'static str, f: impl FnOnce() -> T) -> T {
    let metrics = enabled();
    let flight = crate::flight::armed();
    if !metrics && !flight && !crate::profile::enabled() {
        return f();
    }
    // A real profiler frame (not a post-hoc leaf) so spans inside `f`
    // — e.g. `rx.decode` — nest under this stage in the tree.
    let frame = crate::profile::scope(stage);
    let t0 = Instant::now();
    let out = f();
    let us = t0.elapsed().as_secs_f64() * 1e6;
    drop(frame);
    if metrics {
        Registry::global().hist_observe(
            key("pipe.stage_us", protocol, stage),
            us,
            buckets::LATENCY_US,
        );
    }
    if flight {
        crate::flight::note_stage(stage, us);
    }
    out
}

/// Canonical bucket-edge sets for the quantities the stack measures.
pub mod buckets {
    /// Correlation scores in `[0, 1]`, 0.05 steps.
    pub const SCORE: &[f64] = &[
        0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75,
        0.80, 0.85, 0.90, 0.95, 1.0,
    ];
    /// Stage latency in microseconds, exponential.
    pub const LATENCY_US: &[f64] = &[
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
        2e5, 5e5, 1e6,
    ];
    /// SNR in dB, 5 dB steps across the operating range.
    pub const SNR_DB: &[f64] =
        &[-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];
    /// Bit-error rates, decade edges.
    pub const BER: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0];
    /// Small integer counts (queue depths, outstanding chunks).
    pub const COUNT: &[f64] =
        &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];
}

/// Serializes tests that manipulate the global registry / enable flag.
#[doc(hidden)]
pub fn tests_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &'static str) -> Key {
        Key { name, experiment: "test".into(), protocol: "ble", stage: "decode" }
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let r = Registry::new();
        r.counter_add(k("c"), u64::MAX - 1);
        r.counter_add(k("c"), 5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, Value::Counter(u64::MAX));
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper() {
        let r = Registry::new();
        static EDGES: &[f64] = &[1.0, 2.0, 5.0];
        // Exactly on an edge → that bucket; above all edges → overflow.
        for v in [0.5, 1.0, 1.5, 2.0, 5.0, 7.0, 100.0] {
            r.hist_observe(k("h"), v, EDGES);
        }
        let snap = r.snapshot();
        let Value::Histogram(h) = &snap[0].value else { panic!() };
        assert_eq!(h.counts, vec![2, 2, 1, 2]);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - (0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0 + 100.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        static EDGES: &[f64] = &[10.0, 20.0, 50.0];
        // 100 observations spread 60/30/10 across the first three buckets.
        for i in 0..60 {
            r.hist_observe(k("q"), 1.0 + (i as f64) * 0.15, EDGES); // [1, ~9.85]
        }
        for i in 0..30 {
            r.hist_observe(k("q"), 11.0 + (i as f64) * 0.3, EDGES); // [11, ~19.7]
        }
        for i in 0..10 {
            r.hist_observe(k("q"), 21.0 + (i as f64) * 2.0, EDGES); // [21, 39]
        }
        let snap = r.snapshot();
        let Value::Histogram(h) = &snap[0].value else { panic!() };
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!((1.0..=10.0).contains(&p50), "p50 in first bucket: {p50}");
        assert!((10.0..=20.0).contains(&p90), "p90 in second bucket: {p90}");
        assert!((20.0..=39.0).contains(&p99), "p99 in third bucket: {p99}");
        assert!(p50 < p90 && p90 < p99, "quantiles ordered: {p50} {p90} {p99}");
        assert_eq!(h.quantile(0.0), h.min);
        assert_eq!(h.quantile(1.0), h.max);
    }

    #[test]
    fn empty_histogram_reports_zero_min_max() {
        let h = Histogram::new(buckets::SCORE);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn disabled_free_functions_record_nothing() {
        let _guard = tests_serial();
        disable();
        let before = Registry::global().len();
        counter_add("t.off", "", "", 1);
        gauge_set("t.off.g", "", "", 1.0);
        hist_observe("t.off.h", "", "", 1.0, buckets::SCORE);
        assert_eq!(Registry::global().len(), before);
    }

    #[test]
    fn enabled_free_functions_key_by_ambient_experiment() {
        let _guard = tests_serial();
        Registry::global().reset();
        set_experiment("unit");
        enable();
        counter_add("t.on", "zigbee", "decode", 3);
        counter_add("t.on", "zigbee", "decode", 2);
        disable();
        let snap = Registry::global().snapshot();
        let rec = snap.iter().find(|r| r.key.name == "t.on").expect("recorded");
        assert_eq!(rec.key.experiment, "unit");
        assert_eq!(rec.value, Value::Counter(5));
        Registry::global().reset();
        set_experiment("");
    }

    #[test]
    fn concurrent_counter_adds_all_land() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        r.counter_add(k("conc"), 1);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap[0].value, Value::Counter(40_000));
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let r = Registry::new();
        r.counter_add(k("b"), 1);
        r.counter_add(k("a"), 1);
        let names: Vec<_> = r.snapshot().iter().map(|rec| rec.key.name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
