//! Property-based equivalence between the fast correlation kernels and
//! their reference formulations: whatever inputs arrive, the bit-packed,
//! prefix-sum, and FFT paths must agree with the scalar / per-offset /
//! direct code they replaced.

use msc_dsp::corr::{
    normalized_corr, quantized_corr, sign_quantize, sliding_corr, sliding_corr_direct,
    sliding_corr_fft, PackedBits,
};
use proptest::prelude::*;

/// The pre-rewrite sliding correlation: a full `normalized_corr` per
/// offset, re-deriving window statistics each time.
fn sliding_corr_naive(signal: &[f64], template: &[f64]) -> Vec<f64> {
    let l = template.len();
    (0..=signal.len() - l).map(|off| normalized_corr(&signal[off..off + l], template)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_corr_matches_scalar_quantized(
        raw_a in prop::collection::vec(-1.0f64..1.0, 1..300),
        raw_b in prop::collection::vec(-1.0f64..1.0, 1..300),
        dc in -0.5f64..0.5,
        tie_at in any::<prop::sample::Index>(),
    ) {
        let l = raw_a.len().min(raw_b.len());
        let mut a = raw_a[..l].to_vec();
        let b = &raw_b[..l];
        // Force an exact tie so the x == dc contract is exercised, not
        // just sampled (a uniform draw never hits it).
        a[tie_at.index(l)] = dc;
        let (qa, qb) = (sign_quantize(&a, dc), sign_quantize(b, dc));
        let scalar = quantized_corr(&qa, &qb);
        let packed = PackedBits::from_signal(&a, dc).corr(&PackedBits::from_signal(b, dc));
        prop_assert_eq!(scalar, packed);
        // Packing pre-quantized signs is the same as packing the signal.
        prop_assert_eq!(PackedBits::from_signs(&qa).corr(&PackedBits::from_signs(&qb)), packed);
    }

    #[test]
    fn prefix_sum_sliding_matches_naive(
        signal in prop::collection::vec(-1.0f64..1.0, 64..400),
        template in prop::collection::vec(-1.0f64..1.0, 2..64),
    ) {
        let fast = sliding_corr_direct(&signal, &template);
        let naive = sliding_corr_naive(&signal, &template);
        prop_assert_eq!(fast.len(), naive.len());
        for (off, (f, n)) in fast.iter().zip(&naive).enumerate() {
            prop_assert!((f - n).abs() <= 1e-9, "offset {}: {} vs {}", off, f, n);
        }
    }

    #[test]
    fn fft_sliding_matches_direct(
        signal in prop::collection::vec(-1.0f64..1.0, 128..1024),
        template in prop::collection::vec(-1.0f64..1.0, 32..128),
    ) {
        let direct = sliding_corr_direct(&signal, &template);
        let fft = sliding_corr_fft(&signal, &template);
        prop_assert_eq!(fft.len(), direct.len());
        for (off, (f, d)) in fft.iter().zip(&direct).enumerate() {
            prop_assert!((f - d).abs() <= 1e-9, "offset {}: {} vs {}", off, f, d);
        }
    }

    #[test]
    fn overlap_save_convolution_matches_direct(
        re in prop::collection::vec(-1.0f64..1.0, 64..1200),
        im in prop::collection::vec(-1.0f64..1.0, 64..1200),
        taps in prop::collection::vec(-1.0f64..1.0, 2..160),
    ) {
        let n = re.len().min(im.len());
        let signal: Vec<msc_dsp::Complex64> =
            re[..n].iter().zip(&im[..n]).map(|(&r, &i)| msc_dsp::Complex64::new(r, i)).collect();
        let fir = msc_dsp::Fir::new(taps);
        let direct = fir.convolve_direct(&signal);
        let fast = fir.convolve_overlap_save(&signal);
        prop_assert_eq!(fast.len(), direct.len());
        for (k, (f, d)) in fast.iter().zip(&direct).enumerate() {
            prop_assert!((*f - *d).abs() <= 1e-9, "sample {}: {:?} vs {:?}", k, f, d);
        }
    }

    #[test]
    fn dispatching_sliding_corr_agrees_with_naive(
        signal in prop::collection::vec(-1.0f64..1.0, 64..600),
        template in prop::collection::vec(-1.0f64..1.0, 2..96),
    ) {
        // Whatever path the heuristic picks, the answer is the same.
        let auto = sliding_corr(&signal, &template);
        let naive = sliding_corr_naive(&signal, &template);
        for (off, (a, n)) in auto.iter().zip(&naive).enumerate() {
            prop_assert!((a - n).abs() <= 1e-9, "offset {}: {} vs {}", off, a, n);
        }
    }
}
