//! A minimal complex-number type for baseband signal processing.
//!
//! We deliberately avoid an external `num-complex` dependency: the
//! operations needed by the modulators, FFT, and correlators are small and
//! benefit from being in one place where they can be inlined and audited.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex sample `re + j*im` in double precision.
///
/// All baseband signals in this workspace are sequences of `Complex64`.
/// `repr(C)` guarantees the `(re, im)` memory order that the FFT's
/// vectorized butterfly kernel relies on when it reinterprets sample
/// slices as `f64` pairs.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// In-phase (real) component.
    pub re: f64,
    /// Quadrature (imaginary) component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + j0`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + j0`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + j1`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// `magnitude * exp(j * phase)` with `phase` in radians.
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex64::new(magnitude * phase.cos(), magnitude * phase.sin())
    }

    /// `exp(j * phase)` — a unit-magnitude phasor.
    #[inline]
    pub fn cis(phase: f64) -> Self {
        Complex64::from_polar(1.0, phase)
    }

    /// The complex conjugate `re - j*im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// The squared magnitude `re^2 + im^2` (instantaneous power).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude (absolute value / envelope).
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase) in `(-pi, pi]` radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Rotates this sample by `phase` radians (multiplies by `exp(j*phase)`).
    #[inline]
    pub fn rotate(self, phase: f64) -> Self {
        self * Complex64::cis(phase)
    }

    /// The multiplicative inverse. Returns `None` for the zero sample.
    #[inline]
    pub fn recip(self) -> Option<Self> {
        let n = self.norm_sqr();
        if n == 0.0 {
            None
        } else {
            Some(Complex64::new(self.re / n, -self.im / n))
        }
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}{:.6}j", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let n = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / n,
            (self.im * rhs.re - self.re * rhs.im) / n,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors_and_accessors() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let phase = k as f64 * 0.41;
            assert!(close(Complex64::cis(phase).abs(), 1.0));
        }
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        // (1+2j)(-3+0.5j) = -3 + 0.5j - 6j + j^2 = -4 - 5.5j
        assert_eq!(a * b, Complex64::new(-4.0, -5.5));
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn recip_of_zero_is_none() {
        assert!(Complex64::ZERO.recip().is_none());
        let z = Complex64::new(0.0, 2.0);
        let r = z.recip().unwrap();
        let p = z * r;
        assert!(close(p.re, 1.0) && close(p.im, 0.0));
    }

    #[test]
    fn rotation_preserves_magnitude() {
        let z = Complex64::new(1.5, -0.7);
        let r = z.rotate(1.234);
        assert!(close(r.abs(), z.abs()));
        assert!(close((r.arg() - z.arg()).rem_euclid(std::f64::consts::TAU), 1.234));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(10.0, 10.0));
    }

    #[test]
    fn multiply_by_i_rotates_quarter_turn() {
        let z = Complex64::new(1.0, 0.0);
        assert_eq!(z * Complex64::I, Complex64::new(0.0, 1.0));
        assert_eq!(z * Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }
}
