//! Radix-2 decimation-in-time FFT.
//!
//! Sized for this workspace's needs: 64-point transforms for 802.11 OFDM
//! and up to a few thousand points for spectral analysis in tests. The
//! implementation is iterative with precomputed twiddles; no external
//! dependency.

use crate::complex::Complex64;

/// A planned FFT of a fixed power-of-two size.
///
/// Create once, run many times; the plan owns the twiddle table and the
/// bit-reversal permutation.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    /// Per-stage twiddle tables: entry `s` holds the `2^s` twiddles of
    /// butterfly stage `len = 2^(s+1)` — `exp(-j*2*pi*k/len)` for
    /// `k < len/2` — laid out contiguously so the hot loop reads them
    /// sequentially instead of striding through one shared table.
    /// Total storage is `n - 1` entries.
    stage_twiddles: Vec<Vec<Complex64>>,
    /// Bit-reversed index permutation.
    rev: Vec<usize>,
}

impl Fft {
    /// Plans an FFT of size `n`. Panics unless `n` is a power of two ≥ 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2, got {n}");
        let twiddles: Vec<Complex64> = (0..n / 2)
            .map(|k| Complex64::cis(-std::f64::consts::TAU * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n).map(|i| i.reverse_bits() >> (usize::BITS - bits)).collect();
        let stage_twiddles = (1..=bits)
            .map(|s| {
                let len = 1usize << s;
                let step = n / len;
                (0..len / 2).map(|k| twiddles[k * step]).collect()
            })
            .collect();
        Fft { n, stage_twiddles, rev }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; present for API symmetry with slices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT. Panics if `data.len() != n`.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT input length mismatch");
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.rev[i];
            if j > i {
                data.swap(i, j);
            }
        }
        // Iterative butterflies. Each stage walks its contiguous
        // twiddle table; the slice splits let the compiler drop bounds
        // checks in the inner loops. Operation order per butterfly is
        // exactly `a + b*w` / `a - b*w` with the same twiddle values,
        // so results are bit-identical to the reference indexed
        // formulation. The two smallest stages get flat loops: their
        // generic form degenerates to 1–2 inner iterations per chunk
        // and the loop machinery dominates the arithmetic.
        #[cfg(target_arch = "x86_64")]
        let use_avx = crate::simd::avx_available();
        for tw in &self.stage_twiddles {
            let half = tw.len();
            match half {
                1 => {
                    let w = tw[0];
                    for pair in data.chunks_exact_mut(2) {
                        let x = pair[0];
                        let y = pair[1] * w;
                        pair[0] = x + y;
                        pair[1] = x - y;
                    }
                }
                2 => {
                    let (w0, w1) = (tw[0], tw[1]);
                    for quad in data.chunks_exact_mut(4) {
                        let x0 = quad[0];
                        let y0 = quad[2] * w0;
                        quad[0] = x0 + y0;
                        quad[2] = x0 - y0;
                        let x1 = quad[1];
                        let y1 = quad[3] * w1;
                        quad[1] = x1 + y1;
                        quad[3] = x1 - y1;
                    }
                }
                _ => {
                    let len = half * 2;
                    for chunk in data.chunks_exact_mut(len) {
                        let (lo, hi) = chunk.split_at_mut(half);
                        #[cfg(target_arch = "x86_64")]
                        if use_avx {
                            // SAFETY: AVX support was verified above.
                            unsafe { butterfly_stage_avx(lo, hi, tw) };
                            continue;
                        }
                        butterfly_stage_scalar(lo, hi, tw);
                    }
                }
            }
        }
    }

    /// In-place inverse FFT with 1/n normalization.
    pub fn inverse(&self, data: &mut [Complex64]) {
        for s in data.iter_mut() {
            *s = s.conj();
        }
        self.forward(data);
        let scale = 1.0 / self.n as f64;
        for s in data.iter_mut() {
            *s = s.conj().scale(scale);
        }
    }

    /// Convenience: forward transform of a slice into a new vector.
    pub fn forward_to_vec(&self, input: &[Complex64]) -> Vec<Complex64> {
        let mut v = input.to_vec();
        self.forward(&mut v);
        v
    }

    /// Convenience: inverse transform of a slice into a new vector.
    pub fn inverse_to_vec(&self, input: &[Complex64]) -> Vec<Complex64> {
        let mut v = input.to_vec();
        self.inverse(&mut v);
        v
    }
}

/// One butterfly stage over matched `lo`/`hi` halves with contiguous
/// twiddles: `lo[k], hi[k] ← lo[k] + hi[k]·tw[k], lo[k] − hi[k]·tw[k]`.
/// The AVX kernel below performs the identical IEEE-754 operations (the
/// vector form only commutes one addition), so either path produces
/// bit-identical results.
fn butterfly_stage_scalar(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
    for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw.iter()) {
        let x = *a;
        let y = *b * *w;
        *a = x + y;
        *b = x - y;
    }
}

/// AVX butterfly stage: two butterflies per 256-bit lane group.
///
/// Per butterfly the complex product is formed as
/// `re = br·wr − bi·wi`, `im = bi·wr + br·wi` via `vaddsubpd`; the
/// scalar `Mul` computes `re` identically and `im` with the two
/// products in the opposite order of the (bit-exact, commutative)
/// addition, so the kernel reproduces the scalar path bit-for-bit.
/// `repr(C)` on [`Complex64`] guarantees the `(re, im)` pair layout
/// the unaligned loads rely on.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn butterfly_stage_avx(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_addsub_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd,
        _mm256_permute_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len(), tw.len());
    let half = tw.len();
    let pairs = half / 2;
    let lp = lo.as_mut_ptr() as *mut f64;
    let hp = hi.as_mut_ptr() as *mut f64;
    let wp = tw.as_ptr() as *const f64;
    for i in 0..pairs {
        let o = 4 * i;
        let a = _mm256_loadu_pd(lp.add(o));
        let b = _mm256_loadu_pd(hp.add(o));
        let w = _mm256_loadu_pd(wp.add(o));
        let wr = _mm256_movedup_pd(w); // [wr0, wr0, wr1, wr1]
        let wi = _mm256_permute_pd(w, 0b1111); // [wi0, wi0, wi1, wi1]
        let bs = _mm256_permute_pd(b, 0b0101); // [bi0, br0, bi1, br1]
        let y = _mm256_addsub_pd(_mm256_mul_pd(b, wr), _mm256_mul_pd(bs, wi));
        _mm256_storeu_pd(lp.add(o), _mm256_add_pd(a, y));
        _mm256_storeu_pd(hp.add(o), _mm256_sub_pd(a, y));
    }
    // A stage's half is a power of two, so there is no odd tail; keep a
    // scalar sweep anyway in case a future caller passes one.
    butterfly_stage_scalar(&mut lo[pairs * 2..], &mut hi[pairs * 2..], &tw[pairs * 2..]);
}

/// Direct O(n^2) DFT, used as a test oracle and for odd sizes.
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            input
                .iter()
                .enumerate()
                .map(|(t, &x)| {
                    x * Complex64::cis(-std::f64::consts::TAU * (k * t) as f64 / n as f64)
                })
                .sum()
        })
        .collect()
}

/// Power spectral density estimate via one rectangular-window FFT,
/// returned in natural (not shifted) bin order, normalized by n.
pub fn power_spectrum(fft: &Fft, input: &[Complex64]) -> Vec<f64> {
    let v = fft.forward_to_vec(input);
    let n = v.len() as f64;
    v.iter().map(|s| s.norm_sqr() / n).collect()
}

/// Welch PSD estimate: Hann-windowed segments of length `nfft` with 50%
/// overlap, periodograms averaged. Returned in natural bin order,
/// normalized so a unit-power white signal integrates to ≈ 1 across all
/// bins. Returns an all-zero spectrum for inputs shorter than `nfft`.
pub fn welch_psd(input: &[Complex64], nfft: usize) -> Vec<f64> {
    assert!(nfft.is_power_of_two() && nfft >= 2);
    if input.len() < nfft {
        return vec![0.0; nfft];
    }
    let fft = crate::plan::fft_plan(nfft);
    let window: Vec<f64> = (0..nfft)
        .map(|i| 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / (nfft - 1) as f64).cos()))
        .collect();
    let wpow: f64 = window.iter().map(|w| w * w).sum::<f64>() / nfft as f64;
    let hop = nfft / 2;
    let mut acc = vec![0.0f64; nfft];
    let mut seg = crate::plan::cbuf();
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + nfft <= input.len() {
        seg.clear();
        seg.extend(input[start..start + nfft].iter().zip(&window).map(|(&s, &w)| s.scale(w)));
        fft.forward(&mut seg);
        for (a, s) in acc.iter_mut().zip(seg.iter()) {
            *a += s.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    let norm = 1.0 / (segments as f64 * nfft as f64 * nfft as f64 * wpow);
    acc.iter().map(|&a| a * norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x:?} vs {y:?} (tol {tol})");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let fft = Fft::new(8);
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft.forward(&mut data);
        for s in data {
            assert!((s - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let fft = Fft::new(n);
        let k0 = 5;
        let mut data: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(std::f64::consts::TAU * (k0 * t) as f64 / n as f64))
            .collect();
        fft.forward(&mut data);
        for (k, s) in data.iter().enumerate() {
            if k == k0 {
                assert!((s.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(s.abs() < 1e-9, "leakage at bin {k}: {}", s.abs());
            }
        }
    }

    #[test]
    fn matches_direct_dft() {
        let n = 32;
        let fft = Fft::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 1.1).cos()))
            .collect();
        let got = fft.forward_to_vec(&input);
        let want = dft(&input);
        assert_close(&got, &want, 1e-9);
    }

    #[test]
    fn inverse_round_trip() {
        let n = 128;
        let fft = Fft::new(n);
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos())).collect();
        let mut data = input.clone();
        fft.forward(&mut data);
        fft.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let fft = Fft::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.9).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let time_energy: f64 = input.iter().map(|s| s.norm_sqr()).sum();
        let freq = fft.forward_to_vec(&input);
        let freq_energy: f64 = freq.iter().map(|s| s.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn welch_localizes_a_tone() {
        let n = 2048;
        let k0 = 12; // bin of a 64-point segment
        let input: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(std::f64::consts::TAU * k0 as f64 * t as f64 / 64.0))
            .collect();
        let psd = welch_psd(&input, 64);
        let peak = psd.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, k0);
        // The tone's power concentrates in a few bins around the peak.
        let near: f64 = psd[k0.saturating_sub(2)..(k0 + 3).min(64)].iter().sum();
        let total: f64 = psd.iter().sum();
        assert!(near / total > 0.95, "concentration {}", near / total);
        // Unit-power signal integrates to ≈ 1.
        assert!((total - 1.0).abs() < 0.1, "total {total}");
    }

    #[test]
    fn welch_white_noise_is_flat() {
        // A deterministic pseudo-noise sequence: flat-ish spectrum.
        let mut state = 1u64;
        let input: Vec<Complex64> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = ((state >> 33) as f64 / 2f64.powi(30)) - 1.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let b = ((state >> 33) as f64 / 2f64.powi(30)) - 1.0;
                Complex64::new(a, b)
            })
            .collect();
        let psd = welch_psd(&input, 64);
        let mean = psd.iter().sum::<f64>() / 64.0;
        for (k, &p) in psd.iter().enumerate() {
            assert!(p < mean * 3.0 && p > mean / 5.0, "bin {k}: {p} vs mean {mean}");
        }
    }

    #[test]
    fn welch_short_input_is_zero() {
        let input = vec![Complex64::ONE; 10];
        assert!(welch_psd(&input, 64).iter().all(|&p| p == 0.0));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx_butterfly_stage_is_bit_identical_to_scalar() {
        if !std::arch::is_x86_feature_detected!("avx") {
            return;
        }
        let half = 64;
        let mk = |seed: f64| -> Vec<Complex64> {
            (0..half)
                .map(|i| Complex64::new((i as f64 * seed).sin(), (i as f64 * seed * 1.7).cos()))
                .collect()
        };
        let (mut lo_a, mut hi_a, tw) = (mk(0.31), mk(0.77), mk(0.13));
        let (mut lo_s, mut hi_s) = (lo_a.clone(), hi_a.clone());
        // SAFETY: AVX support was just verified.
        unsafe { butterfly_stage_avx(&mut lo_a, &mut hi_a, &tw) };
        butterfly_stage_scalar(&mut lo_s, &mut hi_s, &tw);
        for i in 0..half {
            assert!(
                lo_a[i].re.to_bits() == lo_s[i].re.to_bits()
                    && lo_a[i].im.to_bits() == lo_s[i].im.to_bits()
                    && hi_a[i].re.to_bits() == hi_s[i].re.to_bits()
                    && hi_a[i].im.to_bits() == hi_s[i].im.to_bits(),
                "AVX and scalar butterflies diverged at {i}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(48);
    }

    #[test]
    #[should_panic]
    fn rejects_length_mismatch() {
        let fft = Fft::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        fft.forward(&mut data);
    }
}
