//! # msc-dsp — DSP substrate for the multiscatter reproduction
//!
//! From-scratch signal-processing primitives shared by every other crate
//! in the workspace: complex samples, rate-tagged IQ buffers, an FFT,
//! FIR/pulse-shaping filters, resamplers, the correlation kernels behind
//! the tag's template matcher, and unit/statistics helpers.
//!
//! Nothing here is specific to the paper; it is the portable math layer
//! that the PHYs, analog front-end, channel models, and tag are built on.

#![warn(missing_docs)]

pub mod buf;
pub mod complex;
pub mod corr;
pub mod fft;
pub mod fir;
pub mod plan;
pub mod rate;
pub mod resample;
pub mod simd;
pub mod stats;
pub mod units;

pub use buf::IqBuf;
pub use complex::Complex64;
pub use fft::Fft;
pub use fir::Fir;
pub use rate::SampleRate;
