//! Plan & scratch registry: thread-local caches of FFT plans and pooled
//! scratch buffers so the steady-state hot path neither recomputes
//! twiddle tables nor allocates intermediate vectors.
//!
//! Two facilities:
//!
//! * **Plan cache** ([`fft_plan`]) — one [`Fft`] per size per thread,
//!   shared via `Rc`. A 16384-point plan costs ~8k `cis` evaluations to
//!   build; the sync correlators ask for the same handful of sizes on
//!   every packet, so the cache turns twiddle synthesis into a hash
//!   lookup.
//! * **Scratch pools** ([`cbuf`], [`rbuf`]) — checkout/return pools of
//!   `Vec<Complex64>` / `Vec<f64>`. A guard hands out a cleared vector
//!   (its *capacity* persists across checkouts) and returns it to the
//!   pool on drop, so inner-loop temporaries stop hitting the allocator
//!   once the high-water capacity is reached.
//!
//! Both are thread-local: no locks on the hot path, and the Monte-Carlo
//! pool's worker threads each warm their own caches. Global atomic
//! counters ([`stats`]) expose hit/miss behaviour so the simulation
//! layer can export it through the observability registry.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::complex::Complex64;
use crate::fft::Fft;

/// Pool size cap per thread: returning a buffer to a full pool frees it
/// instead, bounding per-thread memory at a few deep call chains' worth.
const POOL_CAP: usize = 32;

static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);
static SCRATCH_ALLOCS: AtomicU64 = AtomicU64::new(0);
pub(crate) static PROBE_HITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static PROBE_MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static PLANS: RefCell<HashMap<usize, Rc<Fft>>> = RefCell::new(HashMap::new());
    static C_POOL: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
    static R_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Cumulative plan-cache and scratch-pool statistics, summed across all
/// threads since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-cache lookups served from the cache.
    pub plan_hits: u64,
    /// Plan-cache lookups that had to build a new plan.
    pub plan_misses: u64,
    /// Scratch checkouts served by a pooled buffer.
    pub scratch_reuses: u64,
    /// Scratch checkouts that allocated a fresh buffer.
    pub scratch_allocs: u64,
    /// Sliding-correlation probe spectra served from the cache.
    pub probe_hits: u64,
    /// Sliding-correlation probe spectra that had to run a forward FFT.
    pub probe_misses: u64,
}

/// Reads the cumulative cache statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        plan_hits: PLAN_HITS.load(Ordering::Relaxed),
        plan_misses: PLAN_MISSES.load(Ordering::Relaxed),
        scratch_reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
        scratch_allocs: SCRATCH_ALLOCS.load(Ordering::Relaxed),
        probe_hits: PROBE_HITS.load(Ordering::Relaxed),
        probe_misses: PROBE_MISSES.load(Ordering::Relaxed),
    }
}

/// Returns the cached FFT plan of size `n` for this thread, building and
/// caching it on first use. Panics (like [`Fft::new`]) unless `n` is a
/// power of two ≥ 2.
pub fn fft_plan(n: usize) -> Rc<Fft> {
    PLANS.with(|plans| {
        let mut plans = plans.borrow_mut();
        if let Some(p) = plans.get(&n) {
            PLAN_HITS.fetch_add(1, Ordering::Relaxed);
            return Rc::clone(p);
        }
        PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
        let p = Rc::new(Fft::new(n));
        plans.insert(n, Rc::clone(&p));
        p
    })
}

/// A pooled `Vec<Complex64>` scratch buffer.
///
/// Deref-able to its inner `Vec`; the vector returns to this thread's
/// pool when the guard drops. Checked out via [`cbuf`] / [`cbuf_zeroed`].
#[derive(Debug)]
pub struct CBuf {
    buf: Vec<Complex64>,
}

/// A pooled `Vec<f64>` scratch buffer.
///
/// Deref-able to its inner `Vec`; the vector returns to this thread's
/// pool when the guard drops. Checked out via [`rbuf`] / [`rbuf_zeroed`].
#[derive(Debug)]
pub struct RBuf {
    buf: Vec<f64>,
}

fn checkout<T>(pool: &'static std::thread::LocalKey<RefCell<Vec<Vec<T>>>>) -> Vec<T> {
    pool.with(|p| p.borrow_mut().pop()).map_or_else(
        || {
            SCRATCH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        },
        |mut v| {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v
        },
    )
}

macro_rules! guard_impls {
    ($guard:ident, $elem:ty, $pool:ident) => {
        impl std::ops::Deref for $guard {
            type Target = Vec<$elem>;
            fn deref(&self) -> &Vec<$elem> {
                &self.buf
            }
        }

        impl std::ops::DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut Vec<$elem> {
                &mut self.buf
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                let buf = std::mem::take(&mut self.buf);
                // `try_with`: during thread teardown the pool may already
                // be gone; just let the buffer free normally then.
                let _ = $pool.try_with(|p| {
                    let mut p = p.borrow_mut();
                    if p.len() < POOL_CAP {
                        p.push(buf);
                    }
                });
            }
        }
    };
}

guard_impls!(CBuf, Complex64, C_POOL);
guard_impls!(RBuf, f64, R_POOL);

/// Checks out an empty complex scratch vector (cleared; capacity
/// persists across checkouts on this thread).
pub fn cbuf() -> CBuf {
    CBuf { buf: checkout(&C_POOL) }
}

/// Checks out a complex scratch vector of `n` zero elements.
pub fn cbuf_zeroed(n: usize) -> CBuf {
    let mut g = cbuf();
    g.buf.resize(n, Complex64::ZERO);
    g
}

/// Checks out an empty real scratch vector (cleared; capacity persists
/// across checkouts on this thread).
pub fn rbuf() -> RBuf {
    RBuf { buf: checkout(&R_POOL) }
}

/// Checks out a real scratch vector of `n` zero elements.
pub fn rbuf_zeroed(n: usize) -> RBuf {
    let mut g = rbuf();
    g.buf.resize(n, 0.0);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_reuses_same_plan() {
        let a = fft_plan(256);
        let b = fft_plan(256);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn scratch_capacity_survives_checkout_cycle() {
        {
            let mut b = cbuf();
            b.reserve(4096);
            b.push(Complex64::new(1.0, 2.0));
        }
        let b = cbuf();
        assert!(b.capacity() >= 4096, "capacity should persist in pool");
        assert!(b.is_empty(), "returned buffer must come back cleared");
    }

    #[test]
    fn zeroed_checkout_is_zeroed() {
        {
            let mut b = rbuf();
            b.extend_from_slice(&[3.0; 100]);
        }
        let b = rbuf_zeroed(50);
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn stats_move_forward() {
        let before = stats();
        let _ = fft_plan(64);
        let _ = cbuf();
        let after = stats();
        assert!(after.plan_hits + after.plan_misses > before.plan_hits + before.plan_misses);
        assert!(
            after.scratch_reuses + after.scratch_allocs
                > before.scratch_reuses + before.scratch_allocs
        );
    }
}
