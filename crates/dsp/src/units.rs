//! Power/amplitude unit conversions (dB, dBm, watts) used across the
//! channel models and link-budget code.

/// Converts a linear power ratio to decibels.
#[inline]
pub fn lin_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts power in watts to dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    10.0 * (watts * 1e3).log10()
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0) * 1e-3
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Amplitude ratio corresponding to a power change in dB
/// (`sqrt` of the linear power ratio).
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Power change in dB corresponding to an amplitude ratio.
#[inline]
pub fn amplitude_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for &db in &[-30.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn known_points() {
        assert!((db_to_lin(3.0103) - 2.0).abs() < 1e-4);
        assert!((db_to_lin(10.0) - 10.0).abs() < 1e-12);
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-18);
        assert!((dbm_to_mw(-13.0) - 0.0501187).abs() < 1e-6);
    }

    #[test]
    fn amplitude_vs_power() {
        // +6 dB power = 2x amplitude (approximately).
        assert!((db_to_amplitude(6.0206) - 2.0).abs() < 1e-4);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_mw_round_trip() {
        for &dbm in &[-90.0, -75.0, -13.0, 0.0, 30.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-12);
        }
    }
}
