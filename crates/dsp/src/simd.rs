//! Shared runtime SIMD capability detection.
//!
//! Every vectorized kernel in the workspace (the FFT butterfly, the
//! batched channel kernels in `msc-channel`) gates on the same two
//! probes. `is_x86_feature_detected!` already caches internally, but it
//! still costs an atomic load plus a branch per call; hoisting the
//! probe into a `OnceLock` makes the answer one relaxed load and keeps
//! the detection logic — including the FMA requirement for the AVX2
//! kernels — in one place instead of copied into every kernel file.
//!
//! On non-x86 targets both probes return `false` and callers fall back
//! to their scalar paths.

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// True when the AVX (256-bit float) kernels are usable on this
/// machine. Probed once per process.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn avx_available() -> bool {
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// True when the AVX2 + FMA kernels are usable on this machine. The
/// workspace's AVX2 kernels (vectorized `ln`/`sincos` in the batched
/// AWGN path) use fused multiply-adds, so the probe requires both
/// features. Probed once per process.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Non-x86 fallback: no AVX.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn avx_available() -> bool {
    false
}

/// Non-x86 fallback: no AVX2.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn avx2_available() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_stable_and_consistent() {
        // Two calls must agree (OnceLock caches the probe) and AVX2+FMA
        // implies AVX on every real microarchitecture.
        assert_eq!(avx_available(), avx_available());
        assert_eq!(avx2_available(), avx2_available());
        if avx2_available() {
            assert!(avx_available(), "AVX2+FMA without AVX is not a real target");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn matches_direct_detection() {
        assert_eq!(avx_available(), std::arch::is_x86_feature_detected!("avx"));
        assert_eq!(
            avx2_available(),
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        );
    }
}
