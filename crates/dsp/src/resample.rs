//! Rate conversion: decimation, repetition upsampling, and linear
//! interpolation between arbitrary rates.
//!
//! The tag's ADC runs at 20/10/2.5/1 Msps while each PHY generates at its
//! native rate, so rate conversion sits on every identification path.

use crate::buf::IqBuf;
use crate::complex::Complex64;
use crate::rate::SampleRate;

/// Keeps every `factor`-th sample (no anti-alias filter; the analog
/// front-end model already band-limits before the ADC).
pub fn decimate(signal: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor >= 1, "decimation factor must be >= 1");
    signal.iter().copied().step_by(factor).collect()
}

/// Complex-sample variant of [`decimate`].
pub fn decimate_iq(buf: &IqBuf, factor: usize) -> IqBuf {
    assert!(factor >= 1);
    let samples: Vec<Complex64> = buf.samples().iter().copied().step_by(factor).collect();
    IqBuf::new(samples, SampleRate::hz(buf.rate().as_hz() / factor as f64))
}

/// Repeats each sample `factor` times (zero-order hold).
pub fn upsample_hold(signal: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor >= 1);
    let mut out = Vec::with_capacity(signal.len() * factor);
    for &x in signal {
        out.extend(std::iter::repeat_n(x, factor));
    }
    out
}

/// Linearly resamples a real signal from `from` to `to` samples/s.
///
/// Output length is `round(len * to/from)`. Endpoint samples clamp.
pub fn resample_linear(signal: &[f64], from: SampleRate, to: SampleRate) -> Vec<f64> {
    if signal.is_empty() {
        return Vec::new();
    }
    let ratio = from.as_hz() / to.as_hz();
    let out_len = ((signal.len() as f64) / ratio).round() as usize;
    (0..out_len)
        .map(|i| {
            let pos = i as f64 * ratio;
            let i0 = pos.floor() as usize;
            let frac = pos - i0 as f64;
            let a = signal[i0.min(signal.len() - 1)];
            let b = signal[(i0 + 1).min(signal.len() - 1)];
            a + (b - a) * frac
        })
        .collect()
}

/// Resamples a complex buffer *upward* with an anti-image low-pass at
/// the source Nyquist frequency. Plain linear interpolation leaves
/// spectral images that a discriminator-based detector reads as
/// wideband structure; this removes them. Falls back to plain linear
/// resampling when not upsampling.
pub fn upsample_iq_clean(buf: &IqBuf, to: SampleRate) -> IqBuf {
    if to.as_hz() <= buf.rate().as_hz() {
        return resample_iq(buf, to);
    }
    let raw = resample_iq(buf, to);
    // Anti-image filter: pass the source band, stop its images.
    let cutoff = (buf.rate().as_hz() / 2.0 / to.as_hz()).min(0.45);
    let filt = crate::fir::Fir::lowpass(cutoff.max(0.01), 63);
    IqBuf::new(filt.filter_same(raw.samples()), to)
}

/// Linearly resamples a complex buffer to a new rate.
pub fn resample_iq(buf: &IqBuf, to: SampleRate) -> IqBuf {
    if buf.is_empty() {
        return IqBuf::empty(to);
    }
    let ratio = buf.rate().as_hz() / to.as_hz();
    let out_len = ((buf.len() as f64) / ratio).round() as usize;
    let src = buf.samples();
    let samples = (0..out_len)
        .map(|i| {
            let pos = i as f64 * ratio;
            let i0 = pos.floor() as usize;
            let frac = pos - i0 as f64;
            let a = src[i0.min(src.len() - 1)];
            let b = src[(i0 + 1).min(src.len() - 1)];
            a + (b - a).scale(frac)
        })
        .collect();
    IqBuf::new(samples, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_keeps_every_kth() {
        let sig: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate(&sig, 3), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(decimate(&sig, 1).len(), 10);
    }

    #[test]
    fn decimate_iq_halves_rate() {
        let buf = IqBuf::zeros(100, SampleRate::mhz(20.0));
        let out = decimate_iq(&buf, 2);
        assert_eq!(out.len(), 50);
        assert_eq!(out.rate(), SampleRate::mhz(10.0));
    }

    #[test]
    fn upsample_hold_repeats() {
        assert_eq!(upsample_hold(&[1.0, 2.0], 3), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn linear_resample_identity() {
        let sig: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let r = SampleRate::mhz(10.0);
        let out = resample_linear(&sig, r, r);
        assert_eq!(out, sig);
    }

    #[test]
    fn linear_resample_downsamples_ramp_exactly() {
        // A ramp is linear, so linear interpolation is exact.
        let sig: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = resample_linear(&sig, SampleRate::mhz(20.0), SampleRate::mhz(5.0));
        assert_eq!(out.len(), 25);
        for (i, &v) in out.iter().enumerate() {
            assert!((v - (i * 4) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_resample_up_preserves_tone_shape() {
        let n = 200;
        let sig: Vec<f64> =
            (0..n).map(|i| (std::f64::consts::TAU * 0.01 * i as f64).sin()).collect();
        let out = resample_linear(&sig, SampleRate::mhz(10.0), SampleRate::mhz(20.0));
        assert_eq!(out.len(), 400);
        // Check a mid-point against the analytic value; interpolation error
        // for a slow tone is tiny.
        let t = 101.0 / 2.0;
        let want = (std::f64::consts::TAU * 0.01 * t).sin();
        assert!((out[101] - want).abs() < 1e-3);
    }

    #[test]
    fn resample_iq_round_trip_approx() {
        let r20 = SampleRate::mhz(20.0);
        let r25 = SampleRate::mhz(2.5);
        let samples: Vec<Complex64> =
            (0..800).map(|i| Complex64::cis(std::f64::consts::TAU * 0.002 * i as f64)).collect();
        let buf = IqBuf::new(samples, r20);
        let down = resample_iq(&buf, r25);
        assert_eq!(down.len(), 100);
        assert_eq!(down.rate(), r25);
        let up = resample_iq(&down, r20);
        assert_eq!(up.len(), 800);
        // Compare mid-region samples.
        for i in 100..700 {
            assert!((up.samples()[i] - buf.samples()[i]).abs() < 0.05);
        }
    }

    #[test]
    fn clean_upsample_removes_images() {
        // A tone at 0.3 MHz sampled at 2 Msps, upsampled to 16 Msps:
        // linear interpolation leaves images near multiples of 2 MHz;
        // the clean upsampler must suppress them.
        let src_rate = SampleRate::mhz(2.0);
        let dst_rate = SampleRate::mhz(16.0);
        let n = 256;
        let tone: Vec<Complex64> =
            (0..n).map(|i| Complex64::cis(std::f64::consts::TAU * 0.15 * i as f64)).collect();
        let buf = IqBuf::new(tone, src_rate);
        let image_power = |b: &IqBuf| -> f64 {
            // Energy above 1 MHz via a crude high-pass: x[n] - x[n-1]
            // overweights high frequencies; compare discriminator jumps.
            let s = b.samples();
            let mut acc = 0.0;
            for w in s.windows(2) {
                let d = (w[1] * w[0].conj()).arg();
                if d.abs() > 0.6 {
                    acc += 1.0;
                }
            }
            acc / s.len() as f64
        };
        let dirty = resample_iq(&buf, dst_rate);
        let clean = upsample_iq_clean(&buf, dst_rate);
        assert!(
            image_power(&clean) < image_power(&dirty) / 2.0 + 1e-9,
            "clean {} dirty {}",
            image_power(&clean),
            image_power(&dirty)
        );
        assert_eq!(clean.rate(), dst_rate);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(resample_linear(&[], SampleRate::mhz(1.0), SampleRate::mhz(2.0)).is_empty());
        assert!(resample_iq(&IqBuf::empty(SampleRate::mhz(1.0)), SampleRate::mhz(2.0)).is_empty());
    }
}
