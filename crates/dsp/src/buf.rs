//! Rate-tagged IQ sample buffers.

use crate::complex::Complex64;
use crate::rate::SampleRate;

/// A buffer of complex baseband samples together with its sample rate.
///
/// `IqBuf` is the currency of the whole workspace: modulators produce it,
/// channels transform it, rectifiers and receivers consume it. Operations
/// that combine two buffers check that the rates agree.
#[derive(Clone, Debug, PartialEq)]
pub struct IqBuf {
    samples: Vec<Complex64>,
    rate: SampleRate,
}

impl IqBuf {
    /// Wraps existing samples at the given rate.
    pub fn new(samples: Vec<Complex64>, rate: SampleRate) -> Self {
        IqBuf { samples, rate }
    }

    /// An empty buffer at the given rate.
    pub fn empty(rate: SampleRate) -> Self {
        IqBuf { samples: Vec::new(), rate }
    }

    /// A buffer of `n` zero samples.
    pub fn zeros(n: usize, rate: SampleRate) -> Self {
        IqBuf { samples: vec![Complex64::ZERO; n], rate }
    }

    /// Builds a buffer from real-valued samples (imaginary parts zero).
    pub fn from_real(real: &[f64], rate: SampleRate) -> Self {
        IqBuf { samples: real.iter().map(|&r| Complex64::new(r, 0.0)).collect(), rate }
    }

    /// The sample rate.
    #[inline]
    pub fn rate(&self) -> SampleRate {
        self.rate
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the buffer holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time spanned by the buffer in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.rate.seconds_for(self.samples.len())
    }

    /// Immutable view of the samples.
    #[inline]
    pub fn samples(&self) -> &[Complex64] {
        &self.samples
    }

    /// Mutable view of the samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [Complex64] {
        &mut self.samples
    }

    /// Consumes the buffer, returning its samples.
    #[inline]
    pub fn into_samples(self) -> Vec<Complex64> {
        self.samples
    }

    /// Appends another buffer. Panics on rate mismatch.
    pub fn extend(&mut self, other: &IqBuf) {
        assert_eq!(self.rate, other.rate, "cannot concatenate buffers at different sample rates");
        self.samples.extend_from_slice(&other.samples);
    }

    /// Appends `n` zero samples (guard interval / inter-packet silence).
    pub fn extend_silence(&mut self, n: usize) {
        self.samples.extend(std::iter::repeat_n(Complex64::ZERO, n));
    }

    /// Pushes a single sample.
    #[inline]
    pub fn push(&mut self, s: Complex64) {
        self.samples.push(s);
    }

    /// Element-wise sum of two equal-rate buffers; the shorter one is
    /// zero-padded. Used for colliding excitations (paper §4.1.4).
    pub fn mix(&self, other: &IqBuf) -> IqBuf {
        assert_eq!(self.rate, other.rate, "cannot mix buffers at different rates");
        let n = self.len().max(other.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.samples.get(i).copied().unwrap_or(Complex64::ZERO);
            let b = other.samples.get(i).copied().unwrap_or(Complex64::ZERO);
            out.push(a + b);
        }
        IqBuf::new(out, self.rate)
    }

    /// Scales every sample by `k` (amplitude, not power).
    pub fn scale(&mut self, k: f64) {
        for s in &mut self.samples {
            *s = s.scale(k);
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, k: f64) -> IqBuf {
        let mut out = self.clone();
        out.scale(k);
        out
    }

    /// Mean power of the buffer, `E[|x|^2]`. Zero for an empty buffer.
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak instantaneous power, `max |x|^2`.
    pub fn peak_power(&self) -> f64 {
        self.samples.iter().map(|s| s.norm_sqr()).fold(0.0_f64, f64::max)
    }

    /// Peak-to-average power ratio (linear). 1.0 for constant-envelope.
    pub fn papr(&self) -> f64 {
        let mean = self.mean_power();
        if mean == 0.0 {
            return 0.0;
        }
        self.peak_power() / mean
    }

    /// The magnitude (envelope) of each sample.
    pub fn envelope(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.abs()).collect()
    }

    /// Applies a frequency shift of `delta_hz`: multiplies sample `n` by
    /// `exp(j*2*pi*delta*n/fs)`. This is the tag's square-wave frequency
    /// shifting idealized as a complex mixer.
    pub fn freq_shift(&self, delta_hz: f64) -> IqBuf {
        let mut out = self.clone();
        out.freq_shift_in_place(delta_hz);
        out
    }

    /// In-place variant of [`IqBuf::freq_shift`].
    pub fn freq_shift_in_place(&mut self, delta_hz: f64) {
        let step = std::f64::consts::TAU * delta_hz / self.rate.as_hz();
        for (n, s) in self.samples.iter_mut().enumerate() {
            *s = s.rotate(step * n as f64);
        }
    }

    /// Overwrites this buffer with the contents (samples and rate) of
    /// `other`, reusing this buffer's allocation when it is large enough.
    pub fn copy_from(&mut self, other: &IqBuf) {
        self.rate = other.rate;
        self.samples.clear();
        self.samples.extend_from_slice(&other.samples);
    }

    /// A sub-range copy `[start, start+len)`, clamped to the buffer.
    pub fn slice(&self, start: usize, len: usize) -> IqBuf {
        let end = (start + len).min(self.samples.len());
        let start = start.min(end);
        IqBuf::new(self.samples[start..end].to_vec(), self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate() -> SampleRate {
        SampleRate::mhz(20.0)
    }

    #[test]
    fn construction_and_duration() {
        let b = IqBuf::zeros(160, rate());
        assert_eq!(b.len(), 160);
        assert!((b.duration() - 8e-6).abs() < 1e-15);
        assert!(!b.is_empty());
        assert!(IqBuf::empty(rate()).is_empty());
    }

    #[test]
    fn mean_and_peak_power() {
        let s = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 2.0)];
        let b = IqBuf::new(s, rate());
        assert!((b.mean_power() - 2.5).abs() < 1e-12);
        assert!((b.peak_power() - 4.0).abs() < 1e-12);
        assert!((b.papr() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn mix_zero_pads_shorter() {
        let a = IqBuf::from_real(&[1.0, 1.0, 1.0], rate());
        let b = IqBuf::from_real(&[2.0], rate());
        let m = a.mix(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.samples()[0], Complex64::new(3.0, 0.0));
        assert_eq!(m.samples()[2], Complex64::new(1.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn mix_rejects_rate_mismatch() {
        let a = IqBuf::zeros(4, SampleRate::mhz(20.0));
        let b = IqBuf::zeros(4, SampleRate::mhz(10.0));
        let _ = a.mix(&b);
    }

    #[test]
    fn freq_shift_preserves_power_and_moves_tone() {
        // A DC tone shifted by fs/4 becomes exp(j*pi/2*n).
        let n = 64;
        let b = IqBuf::new(vec![Complex64::ONE; n], rate());
        let shifted = b.freq_shift(rate().as_hz() / 4.0);
        assert!((shifted.mean_power() - 1.0).abs() < 1e-12);
        assert!((shifted.samples()[1].arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((shifted.samples()[2].arg().abs() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn slice_clamps() {
        let b = IqBuf::from_real(&[1.0, 2.0, 3.0], rate());
        assert_eq!(b.slice(1, 10).len(), 2);
        assert_eq!(b.slice(5, 10).len(), 0);
        assert_eq!(b.slice(0, 2).samples()[1], Complex64::new(2.0, 0.0));
    }

    #[test]
    fn envelope_of_constant_signal() {
        let b = IqBuf::new(vec![Complex64::from_polar(2.0, 0.3); 5], rate());
        assert!(b.envelope().iter().all(|&e| (e - 2.0).abs() < 1e-12));
        assert!((b.papr() - 1.0).abs() < 1e-12);
    }
}
