//! Correlation primitives for template matching.
//!
//! Two arithmetic paths mirror the paper's two implementations:
//!
//! * **Full precision** ([`normalized_corr`], [`sliding_corr`]):
//!   floating-point normalized cross-correlation — "if computation
//!   resources are not a problem" (paper §2.2.2, Fig. 5b). The sliding
//!   form keeps per-offset statistics in prefix sums (O(N) normalization
//!   instead of O(N·L)) and switches the remaining multiply-adds to an
//!   FFT cross-correlation when the template is long enough to pay for
//!   the transforms (extended 40 µs windows).
//! * **Sign-quantized** ([`sign_quantize`], [`quantized_corr`],
//!   [`PackedBits`]): each sample quantized to ±1 so multipliers become
//!   adders — the nano-FPGA implementation (paper §2.3.1, Table 2). The
//!   packed form stores 64 signs per machine word, making the correlation
//!   an XOR + popcount per word — the software analogue of the paper's
//!   adder tree.
//!
//! Length mismatches in the pairwise kernels return the error-signaling
//! value 0.0 (no correlation evidence) instead of panicking; the matcher
//! can reach mismatched windows near buffer ends during its lag search.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering;

use crate::complex::Complex64;
use crate::fft::Fft;
use crate::plan;

/// Pearson-style normalized cross-correlation of two equal-length windows.
///
/// Returns a value in `[-1, 1]`; 0 when either window has zero variance
/// **or when the lengths differ** (no evidence, not a panic — mismatched
/// windows are reachable near buffer ends).
pub fn normalized_corr(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return 0.0;
    }
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = a[i] - ma;
        let xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    let denom = (da * db).sqrt();
    if denom < 1e-30 {
        0.0
    } else {
        num / denom
    }
}

/// Smallest power of two ≥ `n` (and ≥ 2, so it is a valid FFT size).
fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(2)
}

/// Should [`sliding_corr`] take the FFT path? Direct costs ~N·L
/// multiply-adds; the FFT path costs three m·log2(m) transforms of size
/// m = next_pow2(N+L) with complex arithmetic (~6× per butterfly).
fn fft_pays_off(n: usize, l: usize) -> bool {
    if l < 32 {
        return false;
    }
    let m = next_pow2(n + l);
    let fft_cost = 6 * 3 * m * (m.trailing_zeros() as usize).max(1);
    n * l > fft_cost
}

/// Slides `template` over `signal` and returns the normalized correlation
/// at each offset (`signal.len() - template.len() + 1` values).
///
/// Per-offset mean/variance of the signal segment come from prefix sums
/// (O(N) total); the numerator either stays a direct dot product or moves
/// to an FFT cross-correlation when the window sizes justify it (see
/// [`sliding_corr_direct`] / [`sliding_corr_fft`], which this dispatches
/// between). All three produce the same values up to f64 rounding.
pub fn sliding_corr(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if fft_pays_off(signal.len(), template.len()) {
        sliding_corr_fft(signal, template)
    } else {
        sliding_corr_direct(signal, template)
    }
}

/// Prefix-sum statistics for the sliding kernels: per-offset segment sum
/// and sum-of-squares, plus the centered template and its variance sum.
struct SlidingPrep {
    /// Template minus its mean (so Σ tc = 0 and the numerator needs no
    /// segment-mean correction).
    tc: Vec<f64>,
    /// Σ tc² — the template's variance numerator.
    var_t: f64,
    /// Prefix sums of the signal (s1[k] = Σ signal[..k]).
    s1: Vec<f64>,
    /// Prefix sums of the squared signal.
    s2: Vec<f64>,
}

fn sliding_prep(signal: &[f64], template: &[f64]) -> SlidingPrep {
    let mt = template.iter().sum::<f64>() / template.len() as f64;
    let tc: Vec<f64> = template.iter().map(|&t| t - mt).collect();
    let var_t: f64 = tc.iter().map(|&t| t * t).sum();
    let mut s1 = Vec::with_capacity(signal.len() + 1);
    let mut s2 = Vec::with_capacity(signal.len() + 1);
    let (mut a1, mut a2) = (0.0f64, 0.0f64);
    s1.push(0.0);
    s2.push(0.0);
    for &x in signal {
        a1 += x;
        a2 += x * x;
        s1.push(a1);
        s2.push(a2);
    }
    SlidingPrep { tc, var_t, s1, s2 }
}

/// Normalizes raw per-offset dot products `num[off] = Σ s[off+i]·tc[i]`
/// into Pearson correlations using the prefix-sum statistics.
fn normalize_sliding(prep: &SlidingPrep, l: usize, num: impl Iterator<Item = f64>) -> Vec<f64> {
    num.enumerate()
        .map(|(off, n)| {
            let seg1 = prep.s1[off + l] - prep.s1[off];
            let seg2 = prep.s2[off + l] - prep.s2[off];
            // Segment variance numerator; clamp tiny negative rounding.
            let var_s = (seg2 - seg1 * seg1 / l as f64).max(0.0);
            let denom = (var_s * prep.var_t).sqrt();
            if denom < 1e-30 {
                0.0
            } else {
                n / denom
            }
        })
        .collect()
}

/// [`sliding_corr`] with the direct O(N·L) dot-product numerator and
/// prefix-sum normalization.
pub fn sliding_corr_direct(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    let l = template.len();
    let prep = sliding_prep(signal, template);
    let nums = (0..=signal.len() - l)
        .map(|off| signal[off..off + l].iter().zip(&prep.tc).map(|(&s, &t)| s * t).sum::<f64>());
    normalize_sliding(&prep, l, nums)
}

/// [`sliding_corr`] with the numerator computed as one FFT
/// cross-correlation (`IFFT(FFT(signal)·conj(FFT(template)))`), O(m·log m)
/// for m = next_pow2(N+L). Exact up to f64 rounding (≪ 1e-9 for the
/// window sizes used here).
pub fn sliding_corr_fft(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    let l = template.len();
    let n = signal.len();
    let prep = sliding_prep(signal, template);
    let m = next_pow2(n + l);
    let fft = plan::fft_plan(m);
    let mut sa = plan::cbuf_zeroed(m);
    for (d, &x) in sa.iter_mut().zip(signal) {
        *d = Complex64::new(x, 0.0);
    }
    let mut tb = plan::cbuf_zeroed(m);
    for (d, &x) in tb.iter_mut().zip(&prep.tc) {
        *d = Complex64::new(x, 0.0);
    }
    fft.forward(&mut sa);
    fft.forward(&mut tb);
    for (a, b) in sa.iter_mut().zip(tb.iter()) {
        *a *= b.conj();
    }
    fft.inverse(&mut sa);
    let nums = sa[..=n - l].iter().map(|c| c.re);
    normalize_sliding(&prep, l, nums)
}

/// Maximum sliding correlation of four templates against one signal:
/// `out[k] = sliding_corr(signal, templates[k]).iter().fold(-∞, max)`,
/// bit-identical to that expression (`NEG_INFINITY` when a template
/// produces no offsets).
///
/// When all four templates share one length — the matcher's bank always
/// does — the direct path runs structure-of-arrays: the templates are
/// interleaved four-wide and every signal offset is read once for all
/// four numerators (template-outer in the lanes), with a runtime-gated
/// AVX2 inner loop. One f64 lane per template and a multiply-then-add
/// chain (no FMA) keep each lane's IEEE operation sequence identical to
/// [`sliding_corr_direct`]'s scalar fold, so the SoA pass cannot change
/// a single bit. Sizes where [`sliding_corr`] would pick the FFT, and
/// banks with mismatched lengths, fall back to the per-template kernels
/// unchanged.
pub fn sliding_corr_max4(signal: &[f64], templates: [&[f64]; 4]) -> [f64; 4] {
    let l = templates[0].len();
    let uniform = l > 0 && templates.iter().all(|t| t.len() == l);
    if !uniform || signal.len() < l || fft_pays_off(signal.len(), l) {
        // Generic path: exactly the per-template loop this kernel
        // replaces (sliding_corr dispatches FFT vs direct itself).
        return templates
            .map(|t| sliding_corr(signal, t).iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v)));
    }
    thread_local! {
        static MAX4_SCRATCH: RefCell<Max4Scratch> = RefCell::new(Max4Scratch::default());
    }
    MAX4_SCRATCH.with(|cell| sliding_corr_max4_soa(signal, templates, &mut cell.borrow_mut()))
}

/// Pooled per-thread buffers for [`sliding_corr_max4`]'s SoA path.
#[derive(Default)]
struct Max4Scratch {
    /// Centered templates interleaved four-wide: `tc4[4i + k] = tc_k[i]`.
    tc4: Vec<f64>,
    /// Signal prefix sums (value and square), as in [`sliding_prep`].
    s1: Vec<f64>,
    s2: Vec<f64>,
    /// Per-offset raw numerators, one lane per template.
    nums: Vec<[f64; 4]>,
}

fn sliding_corr_max4_soa(
    signal: &[f64],
    templates: [&[f64]; 4],
    scratch: &mut Max4Scratch,
) -> [f64; 4] {
    let l = templates[0].len();
    let n_off = signal.len() - l + 1;
    // Center each template exactly as sliding_prep does and interleave.
    let mut var_t = [0.0f64; 4];
    scratch.tc4.clear();
    scratch.tc4.resize(4 * l, 0.0);
    for (k, t) in templates.iter().enumerate() {
        let mt = t.iter().sum::<f64>() / t.len() as f64;
        let mut v = 0.0;
        for (i, &x) in t.iter().enumerate() {
            let c = x - mt;
            scratch.tc4[4 * i + k] = c;
            v += c * c;
        }
        var_t[k] = v;
    }
    // Signal prefix sums, identical to the ones sliding_prep would
    // compute for each template (they depend on the signal alone).
    scratch.s1.clear();
    scratch.s2.clear();
    scratch.s1.reserve(signal.len() + 1);
    scratch.s2.reserve(signal.len() + 1);
    let (mut a1, mut a2) = (0.0f64, 0.0f64);
    scratch.s1.push(0.0);
    scratch.s2.push(0.0);
    for &x in signal {
        a1 += x;
        a2 += x * x;
        scratch.s1.push(a1);
        scratch.s2.push(a2);
    }
    scratch.nums.clear();
    scratch.nums.resize(n_off, [0.0; 4]);
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::avx2_available() {
            // Safety: probed at runtime.
            unsafe { soa_numerators_avx2(signal, &scratch.tc4, l, &mut scratch.nums) };
        } else {
            soa_numerators_scalar(signal, &scratch.tc4, l, &mut scratch.nums);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    soa_numerators_scalar(signal, &scratch.tc4, l, &mut scratch.nums);
    // Normalize and fold the per-template max, mirroring
    // normalize_sliding's expression bit for bit.
    let mut out = [f64::NEG_INFINITY; 4];
    for (off, nums) in scratch.nums.iter().enumerate() {
        let seg1 = scratch.s1[off + l] - scratch.s1[off];
        let seg2 = scratch.s2[off + l] - scratch.s2[off];
        let var_s = (seg2 - seg1 * seg1 / l as f64).max(0.0);
        for k in 0..4 {
            let denom = (var_s * var_t[k]).sqrt();
            let v = if denom < 1e-30 { 0.0 } else { nums[k] / denom };
            out[k] = out[k].max(v);
        }
    }
    out
}

/// Scalar SoA numerators: per offset, one accumulator per template lane,
/// multiply-then-add in sample order — the same fold order as
/// [`sliding_corr_direct`]'s `.map(|(&s, &t)| s * t).sum()`.
fn soa_numerators_scalar(signal: &[f64], tc4: &[f64], l: usize, out: &mut [[f64; 4]]) {
    for (off, o) in out.iter_mut().enumerate() {
        let mut acc = [0.0f64; 4];
        for (i, &s) in signal[off..off + l].iter().enumerate() {
            for k in 0..4 {
                acc[k] += s * tc4[4 * i + k];
            }
        }
        *o = acc;
    }
}

/// AVX2 SoA numerators: the four template lanes live in one `__m256d`
/// accumulator; `vmulpd` + `vaddpd` (deliberately not FMA) perform the
/// identical per-lane IEEE operation sequence as the scalar fold, so
/// the vector path is bit-identical, not merely close.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn soa_numerators_avx2(signal: &[f64], tc4: &[f64], l: usize, out: &mut [[f64; 4]]) {
    use std::arch::x86_64::*;
    for (off, o) in out.iter_mut().enumerate() {
        let mut acc = _mm256_setzero_pd();
        let s = signal.as_ptr().add(off);
        let t = tc4.as_ptr();
        for i in 0..l {
            let sv = _mm256_set1_pd(*s.add(i));
            let tv = _mm256_loadu_pd(t.add(4 * i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(sv, tv));
        }
        _mm256_storeu_pd(o.as_mut_ptr(), acc);
    }
}

/// Per-thread cap on memoized probe spectra; exceeding it clears the
/// map (receivers use a handful of fixed sync probes, so eviction is
/// effectively never hit in practice).
const PROBE_CACHE_CAP: usize = 8;

/// Memoized probe spectra, keyed by (fft size, probe fingerprint).
type ProbeSpectra = HashMap<(usize, u64), Rc<Vec<Complex64>>>;

thread_local! {
    /// Memoized zero-padded probe spectra. Sync correlators slide the
    /// *same* preamble probe over every packet, so its forward
    /// transform — one of the three FFTs in [`complex_sliding_corr`] —
    /// is loop-invariant across a run and worth caching.
    static PROBE_SPECTRA: RefCell<ProbeSpectra> = RefCell::new(HashMap::new());
}

/// FNV-1a over the probe's raw sample bits and length. A 64-bit
/// fingerprint over a handful of distinct probes per process makes an
/// accidental collision astronomically unlikely.
fn probe_fingerprint(probe: &[Complex64]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ probe.len() as u64;
    for s in probe {
        h = (h ^ s.re.to_bits()).wrapping_mul(PRIME);
        h = (h ^ s.im.to_bits()).wrapping_mul(PRIME);
    }
    h
}

/// The forward FFT of `probe` zero-padded to length `m`, served from the
/// per-thread memo when the same probe was transformed before. A cache
/// hit returns bit-identical values to a fresh transform (same plan,
/// same input), so callers cannot observe the memoization numerically.
fn probe_spectrum(fft: &Fft, m: usize, probe: &[Complex64]) -> Rc<Vec<Complex64>> {
    let key = (m, probe_fingerprint(probe));
    PROBE_SPECTRA.with(|cache| {
        if let Some(spec) = cache.borrow().get(&key) {
            plan::PROBE_HITS.fetch_add(1, Ordering::Relaxed);
            return Rc::clone(spec);
        }
        plan::PROBE_MISSES.fetch_add(1, Ordering::Relaxed);
        let mut pb = vec![Complex64::ZERO; m];
        pb[..probe.len()].copy_from_slice(probe);
        fft.forward(&mut pb);
        let spec = Rc::new(pb);
        let mut cache = cache.borrow_mut();
        if cache.len() >= PROBE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Rc::clone(&spec));
        spec
    })
}

/// Complex sliding cross-correlation: `out[off] = Σ_i samples[off+i] ·
/// conj(probe[i])` for every full-overlap offset. This is the inner sum
/// of a matched filter; callers normalize by energies themselves. Uses
/// the FFT when the sizes justify it, a direct loop otherwise; the FFT
/// path memoizes the probe's spectrum per thread (see
/// [`probe_spectrum`]).
pub fn complex_sliding_corr(samples: &[Complex64], probe: &[Complex64]) -> Vec<Complex64> {
    if probe.is_empty() || samples.len() < probe.len() {
        return Vec::new();
    }
    let n = samples.len();
    let l = probe.len();
    if !fft_pays_off(n, l) {
        return (0..=n - l)
            .map(|off| {
                samples[off..off + l]
                    .iter()
                    .zip(probe)
                    .fold(Complex64::ZERO, |acc, (&s, &p)| acc + s * p.conj())
            })
            .collect();
    }
    let m = next_pow2(n + l);
    let fft = plan::fft_plan(m);
    let mut sa = plan::cbuf_zeroed(m);
    sa[..n].copy_from_slice(samples);
    let pb = probe_spectrum(&fft, m, probe);
    fft.forward(&mut sa);
    for (a, b) in sa.iter_mut().zip(pb.iter()) {
        *a *= b.conj();
    }
    fft.inverse(&mut sa);
    sa[..=n - l].to_vec()
}

/// Per-offset signal energies for a sliding window of length `l`:
/// `out[off] = Σ_i |samples[off+i]|²`, from one prefix-sum pass.
pub fn sliding_energy(samples: &[Complex64], l: usize) -> Vec<f64> {
    if l == 0 || samples.len() < l {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(samples.len() + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0;
    for s in samples {
        acc += s.norm_sqr();
        prefix.push(acc);
    }
    (0..=samples.len() - l).map(|off| (prefix[off + l] - prefix[off]).max(0.0)).collect()
}

/// Quantizes samples to ±1 around a reference level (the DC estimate from
/// the preprocessing window). This is the 1-bit quantization of §2.3.1.
///
/// Tie-breaking is part of the contract: `x == dc` quantizes to **+1**
/// (the comparison is `x >= dc`). [`PackedBits`] uses the identical rule,
/// so the packed and scalar paths agree bit-for-bit.
pub fn sign_quantize(signal: &[f64], dc: f64) -> Vec<i8> {
    signal.iter().map(|&x| if x >= dc { 1 } else { -1 }).collect()
}

/// Integer correlation of two ±1 sequences: the count of agreements minus
/// disagreements. On the FPGA this is pure adders (no multipliers).
///
/// Returns 0 (no evidence) when the lengths differ.
pub fn quantized_corr(a: &[i8], b: &[i8]) -> i32 {
    if a.len() != b.len() {
        return 0;
    }
    a.iter().zip(b).map(|(&x, &y)| if x == y { 1i32 } else { -1i32 }).sum()
}

/// Normalized form of [`quantized_corr`] in `[-1, 1]`.
pub fn quantized_corr_norm(a: &[i8], b: &[i8]) -> f64 {
    if a.is_empty() || a.len() != b.len() {
        return 0.0;
    }
    quantized_corr(a, b) as f64 / a.len() as f64
}

/// A ±1 sequence bit-packed 64 signs per `u64` word (+1 → bit set, −1 →
/// bit clear). [`PackedBits::corr`] is then an XOR + popcount per word —
/// ~64× fewer operations than the scalar [`quantized_corr`] — which is
/// the software analogue of the paper's "multipliers become adders"
/// argument taken one step further.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// Packs a ±1 sequence (any positive value reads as +1; zero or
    /// negative as −1, matching [`sign_quantize`]'s output domain).
    pub fn from_signs(signs: &[i8]) -> Self {
        let mut words = vec![0u64; signs.len().div_ceil(64)];
        for (i, &s) in signs.iter().enumerate() {
            if s > 0 {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        PackedBits { words, len: signs.len() }
    }

    /// Quantizes and packs in one pass, with the same tie rule as
    /// [`sign_quantize`]: `x >= dc` sets the bit (+1).
    pub fn from_signal(signal: &[f64], dc: f64) -> Self {
        let mut packed = PackedBits::empty();
        packed.pack_into(signal, dc);
        packed
    }

    /// An empty packed sequence, ready for [`PackedBits::pack_into`].
    pub fn empty() -> Self {
        PackedBits { words: Vec::new(), len: 0 }
    }

    /// [`PackedBits::from_signal`] into this instance, reusing the word
    /// buffer — the allocation-free path for pooled scratch that packs
    /// a new window every call (the matcher's batched lag search).
    pub fn pack_into(&mut self, signal: &[f64], dc: f64) {
        self.words.clear();
        self.words.resize(signal.len().div_ceil(64), 0u64);
        for (i, &x) in signal.iter().enumerate() {
            if x >= dc {
                self.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        self.len = signal.len();
    }

    /// Number of packed signs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no signs are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Agreements minus disagreements against another packed sequence:
    /// `len − 2·popcount(a XOR b)`. Identical to [`quantized_corr`] on
    /// the unpacked sequences; returns 0 when the lengths differ.
    pub fn corr(&self, other: &PackedBits) -> i32 {
        if self.len != other.len {
            return 0;
        }
        let mut disagree = 0u32;
        for (w, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            // Mask bits past the sequence end in the last word (both
            // operands should have them clear; be defensive anyway).
            if (w + 1) * 64 > self.len {
                let valid = self.len - w * 64;
                if valid < 64 {
                    x &= (1u64 << valid) - 1;
                }
            }
            disagree += x.count_ones();
        }
        self.len as i32 - 2 * disagree as i32
    }

    /// Normalized form of [`PackedBits::corr`] in `[-1, 1]`.
    pub fn corr_norm(&self, other: &PackedBits) -> f64 {
        if self.is_empty() || self.len != other.len {
            return 0.0;
        }
        self.corr(other) as f64 / self.len as f64
    }

    /// Scores `self` (a packed template) against many packed queries in
    /// one pass: `out[i] = self.corr_norm(&queries[i])`. The template
    /// words stay hot in cache across all queries, which is the point
    /// of the template-outer loop order in the batched matcher.
    pub fn corr_norm_many(&self, queries: &[PackedBits], out: &mut [f64]) {
        assert!(out.len() >= queries.len(), "output slice too short");
        for (q, o) in queries.iter().zip(out.iter_mut()) {
            *o = self.corr_norm(q);
        }
    }
}

/// Estimates DC as the mean of a preprocessing window (paper: the first
/// `L_p` samples are reserved for DC removal and normalization).
pub fn dc_estimate(preprocess_window: &[f64]) -> f64 {
    if preprocess_window.is_empty() {
        return 0.0;
    }
    preprocess_window.iter().sum::<f64>() / preprocess_window.len() as f64
}

/// Normalizes a window to zero mean and unit RMS using statistics from a
/// (possibly different) preprocessing window, mirroring the tag pipeline.
pub fn normalize_window(window: &[f64], dc: f64, rms: f64) -> Vec<f64> {
    let scale = if rms < 1e-30 { 0.0 } else { 1.0 / rms };
    window.iter().map(|&x| (x - dc) * scale).collect()
}

/// RMS deviation of a window about `dc`.
pub fn rms_about(window: &[f64], dc: f64) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    (window.iter().map(|&x| (x - dc) * (x - dc)).sum::<f64>() / window.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-rewrite O(N·L) reference: per-offset normalized_corr.
    fn sliding_corr_naive(signal: &[f64], template: &[f64]) -> Vec<f64> {
        if template.is_empty() || signal.len() < template.len() {
            return Vec::new();
        }
        (0..=signal.len() - template.len())
            .map(|off| normalized_corr(&signal[off..off + template.len()], template))
            .collect()
    }

    fn test_signal(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / 2f64.powi(30)) - 1.0 + 0.3
            })
            .collect()
    }

    #[test]
    fn perfect_correlation_is_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 2.0];
        assert!((normalized_corr(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        assert!((normalized_corr(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_offset_invariance() {
        let a = vec![0.5, 1.5, -0.3, 2.2, 0.1];
        let b: Vec<f64> = a.iter().map(|&x| 3.0 * x + 7.0).collect();
        assert!((normalized_corr(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_yields_zero() {
        let flat = vec![2.0; 8];
        let varying = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(normalized_corr(&flat, &varying), 0.0);
    }

    #[test]
    fn mismatched_lengths_yield_zero_not_panic() {
        assert_eq!(normalized_corr(&[1.0, 2.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(quantized_corr(&[1, -1], &[1]), 0);
        assert_eq!(quantized_corr_norm(&[1, -1], &[1]), 0.0);
    }

    #[test]
    fn sliding_corr_finds_embedded_template() {
        let template = vec![1.0, -1.0, 1.0, 1.0, -1.0];
        let mut signal = vec![0.0; 20];
        for (i, &t) in template.iter().enumerate() {
            signal[7 + i] = t;
        }
        let scores = sliding_corr(&signal, &template);
        let best = scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert_eq!(best.0, 7);
        assert!((best.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_corr_short_signal_empty() {
        assert!(sliding_corr(&[1.0], &[1.0, 2.0]).is_empty());
        assert!(sliding_corr_fft(&[1.0], &[1.0, 2.0]).is_empty());
    }

    #[test]
    fn prefix_sum_matches_naive() {
        let signal = test_signal(400, 7);
        let template = test_signal(60, 9);
        let fast = sliding_corr_direct(&signal, &template);
        let naive = sliding_corr_naive(&signal, &template);
        assert_eq!(fast.len(), naive.len());
        for (f, n) in fast.iter().zip(&naive) {
            assert!((f - n).abs() < 1e-9, "{f} vs {n}");
        }
    }

    #[test]
    fn fft_matches_direct() {
        let signal = test_signal(700, 3);
        let template = test_signal(120, 5);
        let fast = sliding_corr_fft(&signal, &template);
        let direct = sliding_corr_direct(&signal, &template);
        assert_eq!(fast.len(), direct.len());
        for (f, d) in fast.iter().zip(&direct) {
            assert!((f - d).abs() < 1e-9, "{f} vs {d}");
        }
    }

    #[test]
    fn complex_sliding_corr_matches_direct() {
        // Force both paths across the size heuristic and compare.
        let samples: Vec<Complex64> = test_signal(900, 11)
            .iter()
            .zip(test_signal(900, 12).iter())
            .map(|(&a, &b)| Complex64::new(a, b))
            .collect();
        let probe: Vec<Complex64> = samples[100..100 + 200].to_vec();
        let got = complex_sliding_corr(&samples, &probe);
        assert_eq!(got.len(), 900 - 200 + 1);
        // Direct oracle at a few offsets.
        for &off in &[0usize, 100, 250, 700] {
            let want = samples[off..off + 200]
                .iter()
                .zip(&probe)
                .fold(Complex64::ZERO, |acc, (&s, &p)| acc + s * p.conj());
            assert!((got[off] - want).abs() < 1e-8, "off {off}");
        }
        // The self-match offset has the largest magnitude.
        let best = (0..got.len()).max_by(|&a, &b| got[a].abs().partial_cmp(&got[b].abs()).unwrap());
        assert_eq!(best, Some(100));
    }

    #[test]
    fn sliding_energy_matches_direct() {
        let samples: Vec<Complex64> =
            test_signal(50, 4).iter().map(|&a| Complex64::new(a, -a * 0.5)).collect();
        let got = sliding_energy(&samples, 7);
        for (off, &e) in got.iter().enumerate() {
            let want: f64 = samples[off..off + 7].iter().map(|s| s.norm_sqr()).sum();
            assert!((e - want).abs() < 1e-10);
        }
    }

    #[test]
    fn sliding_corr_max4_matches_per_template_fold() {
        // Both dispatch regimes: short templates (direct/SoA path) and
        // long ones where fft_pays_off flips (per-template FFT fallback),
        // plus mismatched lengths (generic fallback) and a too-short
        // signal (no offsets → NEG_INFINITY).
        for (n, l) in [(300usize, 40usize), (300, 120), (4096, 512)] {
            let signal = test_signal(n, 1);
            let t: Vec<Vec<f64>> = (0..4).map(|k| test_signal(l, 50 + k)).collect();
            let got = sliding_corr_max4(&signal, [&t[0], &t[1], &t[2], &t[3]]);
            for k in 0..4 {
                let want =
                    sliding_corr(&signal, &t[k]).iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v));
                assert_eq!(got[k].to_bits(), want.to_bits(), "n={n} l={l} template {k}");
            }
        }
        let signal = test_signal(200, 2);
        let uneven: Vec<Vec<f64>> = (0..4).map(|k| test_signal(30 + k, 60 + k as u64)).collect();
        let got = sliding_corr_max4(&signal, [&uneven[0], &uneven[1], &uneven[2], &uneven[3]]);
        for k in 0..4 {
            let want =
                sliding_corr(&signal, &uneven[k]).iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v));
            assert_eq!(got[k].to_bits(), want.to_bits(), "uneven template {k}");
        }
        let short = sliding_corr_max4(&test_signal(10, 3), [&uneven[0]; 4]);
        assert!(short.iter().all(|v| *v == f64::NEG_INFINITY));
    }

    #[test]
    fn soa_scalar_and_simd_numerators_agree() {
        // The scalar SoA kernel must match the dispatched one exactly —
        // on AVX2 machines this pins the vector lanes to the scalar fold.
        let signal = test_signal(400, 5);
        let l = 64usize;
        let t: Vec<Vec<f64>> = (0..4).map(|k| test_signal(l, 70 + k)).collect();
        let mut scratch = Max4Scratch::default();
        let via_soa = sliding_corr_max4_soa(&signal, [&t[0], &t[1], &t[2], &t[3]], &mut scratch);
        // Recompute numerators with the scalar kernel on the prepared
        // interleave and compare raw lane sums at a few offsets.
        let mut scalar_nums = vec![[0.0f64; 4]; signal.len() - l + 1];
        soa_numerators_scalar(&signal, &scratch.tc4, l, &mut scalar_nums);
        for (off, lanes) in scalar_nums.iter().enumerate().step_by(37) {
            for k in 0..4 {
                assert_eq!(
                    lanes[k].to_bits(),
                    scratch.nums[off][k].to_bits(),
                    "offset {off} lane {k}"
                );
            }
        }
        let reference = sliding_corr_max4(&signal, [&t[0], &t[1], &t[2], &t[3]]);
        for k in 0..4 {
            assert_eq!(via_soa[k].to_bits(), reference[k].to_bits());
        }
    }

    #[test]
    fn quantization_and_integer_corr() {
        let sig = vec![0.2, 0.8, 0.1, 0.9, 0.5];
        let q = sign_quantize(&sig, 0.5);
        // The 0.5 sample ties with dc and must quantize to +1.
        assert_eq!(q, vec![-1, 1, -1, 1, 1]);
        assert_eq!(quantized_corr(&q, &q), 5);
        let inv: Vec<i8> = q.iter().map(|&x| -x).collect();
        assert_eq!(quantized_corr(&q, &inv), -5);
        assert!((quantized_corr_norm(&q, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packed_corr_matches_scalar() {
        for n in [1usize, 5, 63, 64, 65, 120, 128, 200] {
            let a = sign_quantize(&test_signal(n, 21), 0.3);
            let b = sign_quantize(&test_signal(n, 22), 0.3);
            let pa = PackedBits::from_signs(&a);
            let pb = PackedBits::from_signs(&b);
            assert_eq!(pa.corr(&pb), quantized_corr(&a, &b), "n={n}");
            assert_eq!(pa.len(), n);
            assert!((pa.corr_norm(&pb) - quantized_corr_norm(&a, &b)).abs() < 1e-12);
        }
    }

    #[test]
    fn packed_from_signal_matches_quantize_then_pack() {
        let sig = test_signal(130, 33);
        let dc = sig[64]; // force an exact tie at one sample
        let via_scalar = PackedBits::from_signs(&sign_quantize(&sig, dc));
        let direct = PackedBits::from_signal(&sig, dc);
        assert_eq!(via_scalar, direct);
    }

    #[test]
    fn packed_mismatched_lengths_yield_zero() {
        let a = PackedBits::from_signs(&[1, -1, 1]);
        let b = PackedBits::from_signs(&[1, -1]);
        assert_eq!(a.corr(&b), 0);
        assert_eq!(a.corr_norm(&b), 0.0);
    }

    #[test]
    fn quantized_corr_matches_float_corr_for_binary_signals() {
        // For ±1 sequences, normalized float correlation and the integer
        // agreement count coincide (up to mean-removal effects when the
        // sequence is balanced).
        let a: Vec<i8> = vec![1, -1, 1, 1, -1, -1, 1, -1];
        let b: Vec<i8> = vec![1, -1, -1, 1, -1, 1, 1, -1];
        let fa: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let fb: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let qc = quantized_corr_norm(&a, &b);
        let fc = normalized_corr(&fa, &fb);
        assert!((qc - fc).abs() < 1e-12);
    }

    #[test]
    fn dc_and_rms_helpers() {
        let w = vec![1.0, 3.0];
        assert_eq!(dc_estimate(&w), 2.0);
        assert!((rms_about(&w, 2.0) - 1.0).abs() < 1e-12);
        let n = normalize_window(&w, 2.0, 1.0);
        assert_eq!(n, vec![-1.0, 1.0]);
    }

    #[test]
    fn empty_windows_are_safe() {
        assert_eq!(dc_estimate(&[]), 0.0);
        assert_eq!(rms_about(&[], 0.0), 0.0);
        assert_eq!(quantized_corr_norm(&[], &[]), 0.0);
        assert!(PackedBits::from_signs(&[]).is_empty());
    }

    #[test]
    fn pack_into_matches_from_signal_and_reuses_capacity() {
        let long = test_signal(300, 9);
        let short = test_signal(70, 10);
        let mut scratch = PackedBits::empty();
        for (sig, dc) in [(&long, 0.1), (&short, -0.2), (&long, 0.0)] {
            scratch.pack_into(sig, dc);
            let fresh = PackedBits::from_signal(sig, dc);
            assert_eq!(scratch.len(), fresh.len());
            assert_eq!(scratch.corr(&fresh), fresh.len() as i32, "not bit-identical");
        }
        // Shrinking from 300 to 70 samples must not leave stale high
        // words that change correlations.
        scratch.pack_into(&short, 0.0);
        let other = PackedBits::from_signal(&long[..70], 0.0);
        assert_eq!(scratch.corr(&other), PackedBits::from_signal(&short, 0.0).corr(&other));
    }

    #[test]
    fn corr_norm_many_matches_single_query_scoring() {
        let template = PackedBits::from_signal(&test_signal(128, 3), 0.0);
        let queries: Vec<PackedBits> =
            (0..7).map(|s| PackedBits::from_signal(&test_signal(128, 20 + s), 0.05)).collect();
        let mut out = vec![0.0; queries.len()];
        template.corr_norm_many(&queries, &mut out);
        for (q, &got) in queries.iter().zip(&out) {
            assert_eq!(got.to_bits(), template.corr_norm(q).to_bits());
        }
    }
}
