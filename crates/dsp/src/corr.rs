//! Correlation primitives for template matching.
//!
//! Two arithmetic paths mirror the paper's two implementations:
//!
//! * **Full precision** ([`normalized_corr`]): floating-point normalized
//!   cross-correlation — "if computation resources are not a problem"
//!   (paper §2.2.2, Fig. 5b).
//! * **Sign-quantized** ([`sign_quantize`], [`quantized_corr`]): each
//!   sample quantized to ±1 so multipliers become adders — the nano-FPGA
//!   implementation (paper §2.3.1, Table 2).

/// Pearson-style normalized cross-correlation of two equal-length windows.
///
/// Returns a value in `[-1, 1]`; 0 when either window has zero variance.
pub fn normalized_corr(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation windows must have equal length");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = a[i] - ma;
        let xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    let denom = (da * db).sqrt();
    if denom < 1e-30 {
        0.0
    } else {
        num / denom
    }
}

/// Slides `template` over `signal` and returns the normalized correlation
/// at each offset (`signal.len() - template.len() + 1` values).
pub fn sliding_corr(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || signal.len() < template.len() {
        return Vec::new();
    }
    (0..=signal.len() - template.len())
        .map(|off| normalized_corr(&signal[off..off + template.len()], template))
        .collect()
}

/// Quantizes samples to ±1 around a reference level (the DC estimate from
/// the preprocessing window). This is the 1-bit quantization of §2.3.1.
pub fn sign_quantize(signal: &[f64], dc: f64) -> Vec<i8> {
    signal.iter().map(|&x| if x >= dc { 1 } else { -1 }).collect()
}

/// Integer correlation of two ±1 sequences: the count of agreements minus
/// disagreements. On the FPGA this is pure adders (no multipliers).
pub fn quantized_corr(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "quantized windows must have equal length");
    a.iter().zip(b).map(|(&x, &y)| if x == y { 1i32 } else { -1i32 }).sum()
}

/// Normalized form of [`quantized_corr`] in `[-1, 1]`.
pub fn quantized_corr_norm(a: &[i8], b: &[i8]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    quantized_corr(a, b) as f64 / a.len() as f64
}

/// Estimates DC as the mean of a preprocessing window (paper: the first
/// `L_p` samples are reserved for DC removal and normalization).
pub fn dc_estimate(preprocess_window: &[f64]) -> f64 {
    if preprocess_window.is_empty() {
        return 0.0;
    }
    preprocess_window.iter().sum::<f64>() / preprocess_window.len() as f64
}

/// Normalizes a window to zero mean and unit RMS using statistics from a
/// (possibly different) preprocessing window, mirroring the tag pipeline.
pub fn normalize_window(window: &[f64], dc: f64, rms: f64) -> Vec<f64> {
    let scale = if rms < 1e-30 { 0.0 } else { 1.0 / rms };
    window.iter().map(|&x| (x - dc) * scale).collect()
}

/// RMS deviation of a window about `dc`.
pub fn rms_about(window: &[f64], dc: f64) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    (window.iter().map(|&x| (x - dc) * (x - dc)).sum::<f64>() / window.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation_is_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 2.0];
        assert!((normalized_corr(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        assert!((normalized_corr(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_offset_invariance() {
        let a = vec![0.5, 1.5, -0.3, 2.2, 0.1];
        let b: Vec<f64> = a.iter().map(|&x| 3.0 * x + 7.0).collect();
        assert!((normalized_corr(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_yields_zero() {
        let flat = vec![2.0; 8];
        let varying = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(normalized_corr(&flat, &varying), 0.0);
    }

    #[test]
    fn sliding_corr_finds_embedded_template() {
        let template = vec![1.0, -1.0, 1.0, 1.0, -1.0];
        let mut signal = vec![0.0; 20];
        for (i, &t) in template.iter().enumerate() {
            signal[7 + i] = t;
        }
        let scores = sliding_corr(&signal, &template);
        let best = scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert_eq!(best.0, 7);
        assert!((best.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_corr_short_signal_empty() {
        assert!(sliding_corr(&[1.0], &[1.0, 2.0]).is_empty());
    }

    #[test]
    fn quantization_and_integer_corr() {
        let sig = vec![0.2, 0.8, 0.1, 0.9, 0.5];
        let q = sign_quantize(&sig, 0.5);
        assert_eq!(q, vec![-1, 1, -1, 1, 1]);
        assert_eq!(quantized_corr(&q, &q), 5);
        let inv: Vec<i8> = q.iter().map(|&x| -x).collect();
        assert_eq!(quantized_corr(&q, &inv), -5);
        assert!((quantized_corr_norm(&q, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantized_corr_matches_float_corr_for_binary_signals() {
        // For ±1 sequences, normalized float correlation and the integer
        // agreement count coincide (up to mean-removal effects when the
        // sequence is balanced).
        let a: Vec<i8> = vec![1, -1, 1, 1, -1, -1, 1, -1];
        let b: Vec<i8> = vec![1, -1, -1, 1, -1, 1, 1, -1];
        let fa: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let fb: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let qc = quantized_corr_norm(&a, &b);
        let fc = normalized_corr(&fa, &fb);
        assert!((qc - fc).abs() < 1e-12);
    }

    #[test]
    fn dc_and_rms_helpers() {
        let w = vec![1.0, 3.0];
        assert_eq!(dc_estimate(&w), 2.0);
        assert!((rms_about(&w, 2.0) - 1.0).abs() < 1e-12);
        let n = normalize_window(&w, 2.0, 1.0);
        assert_eq!(n, vec![-1.0, 1.0]);
    }

    #[test]
    fn empty_windows_are_safe() {
        assert_eq!(dc_estimate(&[]), 0.0);
        assert_eq!(rms_about(&[], 0.0), 0.0);
        assert_eq!(quantized_corr_norm(&[], &[]), 0.0);
    }
}
