//! Small statistics helpers used by experiment runners and metrics.

/// Arithmetic mean. Zero for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance. Zero for slices shorter than 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Population standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Minimum. NaN-free input assumed; returns +inf for empty slices.
pub fn min(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum. Returns -inf for empty slices.
pub fn max(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated percentile, `p` in [0, 100].
pub fn percentile(v: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if v.is_empty() {
        return f64::NAN;
    }
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = p / 100.0 * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

/// Median (50th percentile).
pub fn median(v: &[f64]) -> f64 {
    percentile(v, 50.0)
}

/// A streaming mean/min/max accumulator for long Monte-Carlo runs.
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Running { n: 0, sum: 0.0, sum_sq: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0).sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let v = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentiles() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
    }

    #[test]
    fn running_matches_batch() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 3.0 + 1.0).collect();
        let mut r = Running::new();
        for &x in &v {
            r.push(x);
        }
        assert_eq!(r.count(), 100);
        assert!((r.mean() - mean(&v)).abs() < 1e-12);
        assert!((r.std_dev() - std_dev(&v)).abs() < 1e-9);
        assert_eq!(r.min(), min(&v));
        assert_eq!(r.max(), max(&v));
    }
}
