//! Sample-rate bookkeeping.
//!
//! Every buffer of samples in this workspace carries its sample rate, so
//! the type system can catch rate mismatches that would otherwise show up
//! as silently garbled correlations.

use std::fmt;
use std::time::Duration;

/// A sample rate in samples per second (Hz).
///
/// Stored as `f64` so fractional resampler outputs remain representable,
/// but the common constructors take integer Hz.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SampleRate(f64);

impl SampleRate {
    /// 20 Msps — the tag ADC's full sampling rate in the paper.
    pub const ADC_FULL: SampleRate = SampleRate(20_000_000.0);
    /// 10 Msps — first downsampled identification rate (Fig. 7).
    pub const ADC_HALF: SampleRate = SampleRate(10_000_000.0);
    /// 2.5 Msps — the paper's lowest high-accuracy rate (Fig. 8b).
    pub const ADC_LOW: SampleRate = SampleRate(2_500_000.0);
    /// 1 Msps — below the usable floor (Fig. 8c).
    pub const ADC_FLOOR: SampleRate = SampleRate(1_000_000.0);

    /// Creates a sample rate from Hz. Panics if non-positive or non-finite.
    #[inline]
    pub fn hz(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "sample rate must be positive and finite, got {rate}"
        );
        SampleRate(rate)
    }

    /// Creates a sample rate from MHz.
    #[inline]
    pub fn mhz(rate: f64) -> Self {
        SampleRate::hz(rate * 1e6)
    }

    /// The rate in Hz.
    #[inline]
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The rate in Msps.
    #[inline]
    pub fn as_msps(self) -> f64 {
        self.0 / 1e6
    }

    /// Duration of one sample period.
    #[inline]
    pub fn period(self) -> f64 {
        1.0 / self.0
    }

    /// Number of samples covering `duration` seconds (rounded to nearest).
    #[inline]
    pub fn samples_in(self, seconds: f64) -> usize {
        (seconds * self.0).round() as usize
    }

    /// Number of samples covering a [`Duration`].
    #[inline]
    pub fn samples_in_duration(self, d: Duration) -> usize {
        self.samples_in(d.as_secs_f64())
    }

    /// Seconds spanned by `n` samples at this rate.
    #[inline]
    pub fn seconds_for(self, n: usize) -> f64 {
        n as f64 / self.0
    }

    /// The integer decimation factor from `self` down to `target`.
    ///
    /// Returns `None` when `self` is not an integer multiple of `target`
    /// (within floating-point tolerance).
    pub fn decimation_to(self, target: SampleRate) -> Option<usize> {
        let ratio = self.0 / target.0;
        let rounded = ratio.round();
        if rounded >= 1.0 && (ratio - rounded).abs() < 1e-9 * ratio {
            Some(rounded as usize)
        } else {
            None
        }
    }
}

impl fmt::Debug for SampleRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Msps", self.as_msps())
    }
}

impl fmt::Display for SampleRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let r = SampleRate::mhz(20.0);
        assert_eq!(r.as_hz(), 20e6);
        assert_eq!(r.as_msps(), 20.0);
        assert_eq!(r, SampleRate::ADC_FULL);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = SampleRate::hz(0.0);
    }

    #[test]
    fn sample_counting() {
        let r = SampleRate::mhz(20.0);
        // The 8 us BLE preamble covers 160 samples at 20 Msps (paper §2.2.2).
        assert_eq!(r.samples_in(8e-6), 160);
        assert!((r.seconds_for(160) - 8e-6).abs() < 1e-15);
    }

    #[test]
    fn decimation_factors() {
        assert_eq!(SampleRate::ADC_FULL.decimation_to(SampleRate::ADC_HALF), Some(2));
        assert_eq!(SampleRate::ADC_FULL.decimation_to(SampleRate::ADC_LOW), Some(8));
        assert_eq!(SampleRate::ADC_FULL.decimation_to(SampleRate::ADC_FLOOR), Some(20));
        assert_eq!(SampleRate::ADC_LOW.decimation_to(SampleRate::ADC_FULL), None);
        assert_eq!(SampleRate::mhz(3.0).decimation_to(SampleRate::mhz(2.0)), None);
    }

    #[test]
    fn duration_round_trip() {
        let r = SampleRate::mhz(2.5);
        assert_eq!(r.samples_in_duration(Duration::from_micros(40)), 100);
    }
}
