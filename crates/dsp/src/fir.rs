//! FIR filtering and pulse-shaping filter design.
//!
//! Provides the shaping filters the PHYs need: windowed-sinc low-pass
//! (band-limiting DSSS/OFDM waveforms so phase transitions produce the
//! envelope dips the tag's detector keys on), the Gaussian filter for BLE
//! GFSK, and the half-sine pulse for ZigBee OQPSK.

use crate::complex::Complex64;
use crate::plan;

/// Should [`Fir::convolve`] take the overlap-save FFT path? Direct costs
/// ~N·L multiply-adds; overlap-save costs one taps FFT plus two size-m
/// transforms per block of b = m−(L−1) outputs (complex butterflies ≈ 6
/// flops each). Mirrors the `fft_pays_off` heuristic in `corr`.
fn overlap_save_pays_off(n: usize, l: usize) -> bool {
    if l < 32 || n < l {
        return false;
    }
    let m = overlap_save_fft_size(l);
    let b = m - (l - 1);
    let blocks = (n + l - 1).div_ceil(b);
    let fft_cost = 6 * (2 * blocks + 1) * m * (m.trailing_zeros() as usize).max(1);
    n * l > fft_cost
}

/// FFT size for overlap-save with `l` taps: ~8× the tap overlap is close
/// to the throughput optimum for radix-2, floored so short filters still
/// get sensible block sizes.
fn overlap_save_fft_size(l: usize) -> usize {
    ((l - 1).max(1) * 8).next_power_of_two().max(128)
}

/// A real-coefficient FIR filter.
#[derive(Clone, Debug)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Wraps raw taps. Panics if empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        Fir { taps }
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True when the filter has no taps (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples for a symmetric filter: `(len-1)/2`.
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Normalizes taps to unit DC gain (sum of taps = 1).
    pub fn normalized_dc(mut self) -> Self {
        let sum: f64 = self.taps.iter().sum();
        if sum.abs() > 1e-30 {
            for t in &mut self.taps {
                *t /= sum;
            }
        }
        self
    }

    /// Full linear convolution with a complex signal
    /// (output length `signal.len() + taps.len() - 1`).
    ///
    /// Dispatches between the direct O(N·L) loop and overlap-save FFT
    /// convolution when the sizes justify the transforms; both produce
    /// the same values up to f64 rounding (≪ 1e-9 for the filter lengths
    /// used here).
    pub fn convolve(&self, signal: &[Complex64]) -> Vec<Complex64> {
        if overlap_save_pays_off(signal.len(), self.taps.len()) {
            self.convolve_overlap_save(signal)
        } else {
            self.convolve_direct(signal)
        }
    }

    /// [`Fir::convolve`] with the direct O(N·L) multiply-add loop.
    pub fn convolve_direct(&self, signal: &[Complex64]) -> Vec<Complex64> {
        let n = signal.len() + self.taps.len() - 1;
        let mut out = vec![Complex64::ZERO; n];
        for (i, &x) in signal.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += x.scale(h);
            }
        }
        out
    }

    /// [`Fir::convolve`] via overlap-save: blocks of b = m−(L−1) outputs
    /// computed as size-m circular convolutions in the frequency domain,
    /// keeping only the alias-free tail of each block. O((N/b)·m·log m).
    pub fn convolve_overlap_save(&self, signal: &[Complex64]) -> Vec<Complex64> {
        let l = self.taps.len();
        let n = signal.len();
        if n == 0 {
            return Vec::new();
        }
        if l == 1 {
            return signal.iter().map(|&x| x.scale(self.taps[0])).collect();
        }
        let total = n + l - 1;
        let m = overlap_save_fft_size(l);
        let b = m - (l - 1);
        let fft = plan::fft_plan(m);
        // Frequency response of the taps at the block size.
        let mut h = plan::cbuf_zeroed(m);
        for (d, &t) in h.iter_mut().zip(&self.taps) {
            *d = Complex64::new(t, 0.0);
        }
        fft.forward(&mut h);
        let mut seg = plan::cbuf_zeroed(m);
        let mut out = Vec::with_capacity(total);
        // The full convolution equals the L−1-shifted convolution of the
        // signal prepended with L−1 zeros; each block reads m samples of
        // that padded signal and keeps outputs [L−1, m).
        let mut start = 0usize; // index into the output / padded signal
        while start < total {
            for (k, d) in seg.iter_mut().enumerate() {
                let idx = (start + k) as isize - (l - 1) as isize;
                *d = if idx >= 0 && (idx as usize) < n {
                    signal[idx as usize]
                } else {
                    Complex64::ZERO
                };
            }
            fft.forward(&mut seg);
            for (s, &hf) in seg.iter_mut().zip(h.iter()) {
                *s *= hf;
            }
            fft.inverse(&mut seg);
            let take = b.min(total - start);
            out.extend_from_slice(&seg[l - 1..l - 1 + take]);
            start += b;
        }
        out
    }

    /// "Same-length" filtering: convolves and trims the group delay from
    /// both ends so the output aligns with the input.
    pub fn filter_same(&self, signal: &[Complex64]) -> Vec<Complex64> {
        let full = self.convolve(signal);
        let d = self.group_delay();
        full[d..d + signal.len()].to_vec()
    }

    /// Real-signal variant of [`Fir::filter_same`].
    pub fn filter_same_real(&self, signal: &[f64]) -> Vec<f64> {
        let complex: Vec<Complex64> = signal.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        self.filter_same(&complex).iter().map(|s| s.re).collect()
    }

    /// Windowed-sinc low-pass filter.
    ///
    /// * `cutoff_norm` — cutoff as a fraction of the sample rate (0, 0.5).
    /// * `num_taps` — odd tap count (even counts are bumped by one).
    ///
    /// Uses a Hamming window; DC gain normalized to 1.
    pub fn lowpass(cutoff_norm: f64, num_taps: usize) -> Self {
        assert!(
            cutoff_norm > 0.0 && cutoff_norm < 0.5,
            "cutoff must be in (0, 0.5) of the sample rate, got {cutoff_norm}"
        );
        let n = if num_taps.is_multiple_of(2) { num_taps + 1 } else { num_taps };
        let m = (n - 1) as f64;
        let taps: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64 - m / 2.0;
                let sinc = if x == 0.0 {
                    2.0 * cutoff_norm
                } else {
                    (std::f64::consts::TAU * cutoff_norm * x).sin() / (std::f64::consts::PI * x)
                };
                let window = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / m).cos();
                sinc * window
            })
            .collect();
        Fir::new(taps).normalized_dc()
    }

    /// Gaussian pulse-shaping filter for GFSK.
    ///
    /// * `bt` — bandwidth-time product (0.5 for BLE).
    /// * `sps` — samples per symbol.
    /// * `span_symbols` — filter length in symbols (typically 3).
    ///
    /// DC gain normalized to 1 so the frequency deviation is preserved.
    pub fn gaussian(bt: f64, sps: usize, span_symbols: usize) -> Self {
        assert!(bt > 0.0 && sps >= 1 && span_symbols >= 1);
        let n = sps * span_symbols + 1;
        let m = (n - 1) as f64;
        // Standard Gaussian filter: h(t) ∝ exp(-alpha^2 t^2 / T^2) with
        // alpha = sqrt(ln 2 / 2) / BT.
        let alpha = (2.0_f64.ln() / 2.0).sqrt() / bt;
        let taps: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - m / 2.0) / sps as f64; // in symbol periods
                (-(alpha * std::f64::consts::PI * t).powi(2) / (std::f64::consts::PI / 2.0)).exp()
            })
            .collect();
        Fir::new(taps).normalized_dc()
    }

    /// Half-sine pulse over one chip (`sps` samples), as used by
    /// 802.15.4 OQPSK chip shaping.
    pub fn half_sine(sps: usize) -> Self {
        assert!(sps >= 1);
        let taps: Vec<f64> = (0..sps)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) / sps as f64).sin())
            .collect();
        Fir::new(taps)
    }
}

/// Upsample by `factor` (zero-stuffing) then shape with `filter`,
/// output aligned to input start. The standard pulse-shaping pipeline.
pub fn shape_upsampled(symbols: &[Complex64], factor: usize, filter: &Fir) -> Vec<Complex64> {
    assert!(factor >= 1);
    let mut stuffed = vec![Complex64::ZERO; symbols.len() * factor];
    for (i, &s) in symbols.iter().enumerate() {
        stuffed[i * factor] = s.scale(factor as f64); // preserve amplitude
    }
    filter.filter_same(&stuffed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_through() {
        let f = Fir::new(vec![1.0]);
        let sig: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        assert_eq!(f.filter_same(&sig), sig);
    }

    #[test]
    fn moving_average_smooths() {
        let f = Fir::new(vec![0.25; 4]);
        let sig = vec![Complex64::ONE; 16];
        let out = f.filter_same(&sig);
        // Steady-state region should equal 1.
        assert!((out[8].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let f = Fir::lowpass(0.1, 63);
        let n = 256;
        // Low tone at 0.02 fs, high tone at 0.4 fs.
        let low: Vec<Complex64> =
            (0..n).map(|i| Complex64::cis(std::f64::consts::TAU * 0.02 * i as f64)).collect();
        let high: Vec<Complex64> =
            (0..n).map(|i| Complex64::cis(std::f64::consts::TAU * 0.4 * i as f64)).collect();
        let low_out = f.filter_same(&low);
        let high_out = f.filter_same(&high);
        let p = |v: &[Complex64]| v[64..192].iter().map(|s| s.norm_sqr()).sum::<f64>();
        assert!(p(&low_out) > 100.0 * p(&high_out), "low {} high {}", p(&low_out), p(&high_out));
    }

    #[test]
    fn lowpass_dc_gain_is_unity() {
        let f = Fir::lowpass(0.2, 31);
        assert!((f.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_taps_are_symmetric_and_positive() {
        let f = Fir::gaussian(0.5, 8, 3);
        let t = f.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
            assert!(t[i] > 0.0);
        }
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_sine_peaks_mid_chip() {
        let f = Fir::half_sine(8);
        let t = f.taps();
        let max_idx = t.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(max_idx == 3 || max_idx == 4);
        assert!(t[0] > 0.0 && t[0] < 0.3);
    }

    #[test]
    fn shape_upsampled_length() {
        let f = Fir::lowpass(0.1, 21);
        let syms = vec![Complex64::ONE; 10];
        let out = shape_upsampled(&syms, 4, &f);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn overlap_save_matches_direct() {
        for (n, nt) in [(40usize, 33usize), (500, 33), (4096, 65), (1000, 129), (129, 129)] {
            let f = Fir::lowpass(0.2, nt);
            let sig: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let direct = f.convolve_direct(&sig);
            let fast = f.convolve_overlap_save(&sig);
            assert_eq!(direct.len(), fast.len(), "n={n} nt={}", f.len());
            for (i, (d, g)) in direct.iter().zip(&fast).enumerate() {
                assert!((*d - *g).abs() < 1e-9, "n={n} nt={} i={i}: {d:?} vs {g:?}", f.len());
            }
        }
    }

    #[test]
    fn overlap_save_single_tap_and_empty() {
        let f = Fir::new(vec![2.0]);
        let sig = vec![Complex64::new(1.0, -1.0); 5];
        assert_eq!(f.convolve_overlap_save(&sig), f.convolve_direct(&sig));
        assert!(f.convolve_overlap_save(&[]).is_empty());
    }

    #[test]
    fn group_delay_of_symmetric_filter() {
        assert_eq!(Fir::lowpass(0.1, 31).group_delay(), 15);
        assert_eq!(Fir::new(vec![1.0]).group_delay(), 0);
    }
}
