//! A multiprotocol "sniffer" built from the tag's streaming identifier:
//! feeds a continuous ADC sample stream containing a random mix of
//! packets from all four protocols (with idle gaps, varying incident
//! power, and detection noise) through [`StreamingMatcher`] — the
//! FPGA-shaped version of the paper's identification pipeline — and
//! prints the live detection log plus a per-protocol tally.
//!
//! ```text
//! cargo run --release --example sniffer [n_packets] [seed]
//! ```

use multiscatter::core::templates::TemplateBank;
use multiscatter::core::StreamingMatcher;
use multiscatter::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_packets: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // The tag's 2.5 Msps front end with the 40 µs extended window — the
    // paper's low-power operating point.
    let rate = SampleRate::ADC_LOW;
    let fe = FrontEnd::prototype(rate);
    let bank = TemplateBank::build(&fe, TemplateConfig::extended(rate));
    let matcher = Matcher::new(bank, MatchMode::Quantized);
    let mut sniffer = StreamingMatcher::new(matcher, OrderedRule::paper_default());

    // Build the air: random packets with idle gaps.
    let mut stream: Vec<f64> = Vec::new();
    let mut truth: Vec<(usize, Protocol)> = Vec::new();
    for _ in 0..n_packets {
        let gap = rng.gen_range(400..1500);
        stream.extend(std::iter::repeat_n(0.0, gap));
        let p = Protocol::ALL[rng.gen_range(0..4)];
        truth.push((stream.len(), p));
        let wave = multiscatter::sim::idtraces::random_packet(p, &mut rng);
        let incident = rng.gen_range(-8.5..-4.0);
        stream.extend(fe.acquire(&mut rng, &wave, incident));
    }
    stream.extend(std::iter::repeat_n(0.0, 500));

    println!(
        "sniffing {:.1} ms of air at {} ({} packets on it)\n",
        rate.seconds_for(stream.len()) * 1e3,
        rate,
        n_packets
    );

    let detections = sniffer.feed(&stream);
    let mut correct = 0usize;
    let mut tally = [0usize; 4];
    for d in &detections {
        let matched =
            truth.iter().find(|(edge, _)| (d.at as i64 - *edge as i64).unsigned_abs() < 40);
        let verdict = match matched {
            Some((_, p)) if *p == d.protocol => {
                correct += 1;
                "✓"
            }
            Some((_, p)) => Box::leak(format!("✗ (was {})", p.label()).into_boxed_str()),
            None => "? (no packet there)",
        };
        tally[Protocol::ALL.iter().position(|&q| q == d.protocol).unwrap()] += 1;
        println!(
            "t={:8.1} µs  {:8}  score {:.2}  {}",
            d.at as f64 / rate.as_msps(),
            d.protocol.label(),
            d.score,
            verdict
        );
    }

    println!("\ntally: ");
    for (i, p) in Protocol::ALL.iter().enumerate() {
        println!("  {:8} {}", p.label(), tally[i]);
    }
    println!(
        "\n{} / {} packets detected & correctly identified ({} detections total)",
        correct,
        truth.len(),
        detections.len()
    );
}
