//! Quickstart: one full multiscatter round trip on every protocol.
//!
//! A commodity radio crafts an overlay carrier; the tag identifies the
//! excitation, overlays its sensor bits, and the *same single radio*
//! decodes both the productive data and the tag data from the
//! backscattered packet.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use multiscatter::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let mut tag = MultiscatterTag::new(SampleRate::ADC_FULL, Mode::Mode1);

    println!("multiscatter quickstart — κ/γ per Table 6, mode 1 (1:1 tradeoff)\n");

    for protocol in Protocol::ALL {
        // --- the commodity radio's TX half: craft an overlay carrier ---
        let params = overlay::params_for(protocol, Mode::Mode1);
        let n_productive = 16;
        let (productive, carrier): (Vec<u8>, IqBuf) = match protocol {
            Protocol::WifiB => {
                let link = WifiBOverlayLink::new(params);
                let p: Vec<u8> = (0..n_productive).map(|_| rng.gen_range(0..=1)).collect();
                let c = link.make_carrier(&p);
                (p, c)
            }
            Protocol::WifiN => {
                let link = WifiNOverlayLink::new(params);
                let p: Vec<u8> = (0..n_productive).map(|_| rng.gen_range(0..=1)).collect();
                let c = link.make_carrier(&p);
                (p, c)
            }
            Protocol::Ble => {
                let link = BleOverlayLink::new(params);
                let p: Vec<u8> = (0..n_productive).map(|_| rng.gen_range(0..=1)).collect();
                let c = link.make_carrier(&p);
                (p, c)
            }
            Protocol::ZigBee => {
                let link = ZigBeeOverlayLink::new(params);
                let p: Vec<u8> = (0..n_productive).map(|_| rng.gen_range(0..16)).collect();
                let c = link.make_carrier(&p);
                (p, c)
            }
        };

        // --- the tag: identify, then overlay its sensor bits ---
        let sensor_bits: Vec<u8> = (0..8).map(|_| rng.gen_range(0..=1)).collect();
        let response = tag.process(&mut rng, &carrier, -6.0, 0.0, &sensor_bits);
        let identified = response.identified.expect("identification");
        let backscattered = response.backscatter.expect("backscatter");

        // --- the same radio's RX half: decode BOTH streams ---
        let decoded: OverlayDecoded = match protocol {
            Protocol::WifiB => WifiBOverlayLink::new(params).decode(&backscattered).unwrap(),
            Protocol::WifiN => WifiNOverlayLink::new(params).decode(&backscattered).unwrap(),
            Protocol::Ble => {
                BleOverlayLink::new(params).decode(&backscattered, n_productive).unwrap()
            }
            Protocol::ZigBee => ZigBeeOverlayLink::new(params).decode(&backscattered).unwrap(),
        };

        let productive_ok = decoded.productive == productive;
        let loaded = response.bits_loaded.min(sensor_bits.len());
        let tag_ok = decoded.tag[..loaded] == sensor_bits[..loaded];
        println!(
            "{:8}  identified={:8}  productive {} units: {}  tag {} bits: {}",
            protocol.label(),
            identified.label(),
            productive.len(),
            if productive_ok { "OK" } else { "CORRUPT" },
            loaded,
            if tag_ok { "OK" } else { "CORRUPT" },
        );
        assert!(productive_ok && tag_ok && identified == protocol);
    }

    println!("\nall four protocols: identified, overlaid, and decoded on one radio each.");
}
