//! The paper's §4.2.2 scenario: a smart bracelet must stream on-body
//! monitoring data at > 6.3 kbps. The environment offers abundant
//! 802.11n and only spotty 802.11b excitation. A multiscatter tag
//! observes the excitation mix, picks the carrier with the highest
//! backscattered goodput, and meets the goal; an 802.11b-only tag idles
//! whenever its carrier is absent and fails.
//!
//! ```text
//! cargo run --release --example smart_bracelet
//! ```

use multiscatter::core::CarrierScheduler;
use multiscatter::prelude::*;
use multiscatter::sim::throughput::{goodput, ExcitationProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GOAL_BPS: f64 = 6_300.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    println!("smart bracelet: needs > {:.1} kbps of tag goodput\n", GOAL_BPS / 1e3);

    // One simulated second of ambient excitation observed by the tag:
    // 2000 pkts/s of 802.11n, a couple of stray 802.11b frames.
    let mut scheduler = CarrierScheduler::new(1.0);
    let n_params = overlay::params_for(Protocol::WifiN, Mode::Mode1);
    let b_params = overlay::params_for(Protocol::WifiB, Mode::Mode1);
    let n_profile = ExcitationProfile::paper_default(Protocol::WifiN);
    let n_capacity =
        n_params.sequences_in(n_profile.payload_symbols) * n_params.tag_bits_per_sequence();
    for i in 0..2000 {
        // Per-packet delivery jitters with channel conditions.
        let delivery = rng.gen_range(0.9..1.0);
        scheduler.observe(Protocol::WifiN, i as f64 / 2000.0, n_capacity, delivery);
    }
    let b_profile = ExcitationProfile::paper_default(Protocol::WifiB);
    let b_capacity =
        b_params.sequences_in(b_profile.payload_symbols) * b_params.tag_bits_per_sequence();
    for i in 0..3 {
        scheduler.observe(Protocol::WifiB, 0.1 + i as f64 * 0.35, b_capacity, 0.95);
    }

    println!("observed excitation mix (1 s window):");
    for p in Protocol::ALL {
        if scheduler.rate(p) > 0.0 {
            println!(
                "  {:8} {:6.0} pkts/s → est. tag goodput {:7.1} kbps",
                p.label(),
                scheduler.rate(p),
                scheduler.goodput(p) / 1e3
            );
        }
    }

    // The multiscatter tag's pick.
    let pick = scheduler.pick_meeting_goal(GOAL_BPS).expect("some carrier meets the goal");
    println!(
        "\nmultiscatter tag picks {} → {:.1} kbps ({})",
        pick.label(),
        scheduler.goodput(pick) / 1e3,
        if scheduler.goodput(pick) > GOAL_BPS { "goal met" } else { "goal missed" },
    );
    assert!(scheduler.goodput(pick) > GOAL_BPS);

    // The single-protocol tag is stuck with 802.11b.
    let b_goodput = scheduler.goodput(Protocol::WifiB);
    println!(
        "802.11b-only tag      → {:.2} kbps ({})",
        b_goodput / 1e3,
        if b_goodput > GOAL_BPS { "goal met" } else { "goal missed" },
    );
    assert!(b_goodput < GOAL_BPS);

    // Sanity: the accounting model agrees with the scheduler's estimate.
    let model = goodput(&n_profile, Mode::Mode1, 1.0, 0.95);
    println!(
        "\nairtime model cross-check: 802.11n tag stream ≈ {:.1} kbps (scheduler saw {:.1})",
        model.tag_bps / 1e3,
        scheduler.goodput(Protocol::WifiN) / 1e3
    );
}
