//! Protocol identification under the tag's real constraints: a random
//! mix of packets from all four protocols, identified at three ADC
//! operating points — full rate, the 10 Msps quantized point, and the
//! paper's 2.5 Msps + 40 µs extended-window point — with the searched
//! ordered-matching rule. Prints the confusion matrix per configuration.
//!
//! ```text
//! cargo run --release --example protocol_identification
//! ```

use multiscatter::core::search::{collect_scores, default_grid, search_ordered_rule};
use multiscatter::prelude::*;
use multiscatter::sim::idtraces::{front_end, generate_traces};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 20;
    for (rate, extended, label) in [
        (SampleRate::ADC_FULL, false, "20 Msps, 8 µs window, full precision"),
        (SampleRate::ADC_HALF, false, "10 Msps, 8 µs window, ±1 quantized"),
        (SampleRate::ADC_LOW, true, "2.5 Msps, 40 µs window, ±1 quantized"),
    ] {
        let fe = front_end(rate);
        let cfg = if extended {
            TemplateConfig::extended(rate)
        } else if rate == SampleRate::ADC_FULL {
            TemplateConfig::full_rate()
        } else {
            TemplateConfig::standard(rate)
        };
        let mode = if rate == SampleRate::ADC_FULL {
            MatchMode::FullPrecision
        } else {
            MatchMode::Quantized
        };
        let bank = TemplateBank::build(&fe, cfg);
        let matcher = Matcher::new(bank, mode);

        // Train the ordered rule on one trace set (paper §2.3.2's search).
        let train: Vec<(Protocol, Vec<f64>, isize)> = generate_traces(&fe, n, 11)
            .into_iter()
            .map(|t| (t.truth, t.acquired, t.jitter))
            .collect();
        let searched = search_ordered_rule(&collect_scores(&matcher, &train), &default_grid());

        // Evaluate on fresh packets.
        let mut rng = StdRng::seed_from_u64(99);
        let mut confusion = [[0usize; 4]; 4];
        for (ti, truth) in Protocol::ALL.iter().enumerate() {
            for _ in 0..n {
                let wave = multiscatter::sim::idtraces::random_packet(*truth, &mut rng);
                let incident = rng.gen_range(-9.0..-4.0);
                let jitter = rng.gen_range(-2..=2);
                let acquired = fe.acquire(&mut rng, &wave, incident);
                if let Some(got) = matcher.identify_ordered(&acquired, jitter, &searched.rule) {
                    let gi = Protocol::ALL.iter().position(|&q| q == got).unwrap();
                    confusion[ti][gi] += 1;
                }
            }
        }

        println!("== {label} ==");
        println!("truth \\ identified   11n   11b   BLE   ZigBee");
        let mut correct = 0usize;
        for (ti, truth) in Protocol::ALL.iter().enumerate() {
            print!("{:18}", truth.label());
            for gi in 0..4 {
                print!("{:6}", confusion[ti][gi]);
            }
            println!();
            correct += confusion[ti][ti];
        }
        println!(
            "average accuracy: {:.1}%  (ordered chain trained by brute-force search)\n",
            correct as f64 / (4 * n) as f64 * 100.0
        );
    }
    println!("paper reference points: 99.7% at 20 Msps; 97.6% ordered at 10 Msps; 93% at 2.5 Msps extended.");
}
