//! Battery-free operation: the harvest → charge → operate → deplete
//! cycle of the paper's §3, run as an event-driven simulation.
//!
//! A multiscatter tag powered by an MP3-37 solar panel and a BQ25570
//! energy buffer rides an 802.11n excitation stream. Indoors (500 lux)
//! it wakes for ~0.18 s every ~3.6 minutes and exchanges ~360 packets
//! per wake; in sunlight it is powered almost a quarter of the time.
//!
//! ```text
//! cargo run --release --example energy_harvesting
//! ```

use multiscatter::analog::{EnergyBuffer, SolarHarvester, WakeUpReceiver};
use multiscatter::prelude::*;
use multiscatter::sim::energy::{run, EnergySimConfig};
use multiscatter::sim::traffic::{Arrivals, Stream};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let stream = Stream {
        protocol: Protocol::WifiN,
        arrivals: Arrivals::Periodic { rate: 2000.0 },
        airtime_s: 404e-6,
        tag_bits_per_packet: 23,
    };

    println!("battery-free multiscatter tag, 802.11n excitation at 2000 pkts/s\n");
    let h = SolarHarvester::mp3_37();
    let b = EnergyBuffer::paper();
    println!(
        "energy buffer: {:.1} mJ usable per round; load {:.1} mW → {:.2} s of operation",
        b.usable_energy_j() * 1e3,
        279.5,
        b.runtime_s(279.5e-3)
    );

    for (label, cfg) in [
        ("indoor, 500 lux", EnergySimConfig::paper_indoor(vec![stream], 1800.0)),
        ("outdoor, 104 klux", EnergySimConfig::paper_outdoor(vec![stream], 30.0)),
    ] {
        let light = cfg.light;
        let r = run(&mut rng, &cfg);
        println!("\n== {label} ==");
        println!("  harvest power        : {:.2} mW", h.power_w(light) * 1e3);
        println!("  charge time per round: {:.1} s", b.recharge_s(&h, light));
        println!("  rounds completed     : {}", r.rounds);
        println!("  powered fraction     : {:.3}%", r.powered_fraction * 100.0);
        println!(
            "  packets ridden       : {} ({:.0} per round), {} missed while dark",
            r.packets_ridden,
            r.packets_ridden as f64 / r.rounds.max(1) as f64,
            r.packets_missed
        );
        println!("  tag data delivered   : {:.1} kbit", r.tag_bits as f64 / 1e3);
    }

    // What the paper's §2.3-note-1 wake-up receiver would add on sparse
    // excitation: the identification chain only powers while packets fly.
    let w = WakeUpReceiver::roberts_isscc16();
    let chain_mw = 35.0; // 2.5 Msps identification chain
    println!("\nwake-up gating (sparse ZigBee, 20 pkts/s × 4.1 ms):");
    println!(
        "  always-on chain {:.1} mW → gated {:.3} mW ({:.0}× saving)",
        chain_mw,
        w.average_power_w(chain_mw * 1e-3, 20.0, 4.1e-3) * 1e3,
        chain_mw / (w.average_power_w(chain_mw * 1e-3, 20.0, 4.1e-3) * 1e3)
    );
}
