//! Site-survey style range sweep: walks the receiver away from the tag
//! in both the LoS hallway and the NLoS office deployments, printing
//! RSSI, packet delivery, and tag BER per protocol — the measurement
//! behind the paper's Figs. 13 and 14.
//!
//! ```text
//! cargo run --release --example range_survey [packets-per-point]
//! ```

use multiscatter::prelude::*;
use multiscatter::sim::pipeline::{run_packet, AnyLink, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut rng = StdRng::seed_from_u64(5);

    for (nlos, name) in [(false, "LoS hallway"), (true, "NLoS office")] {
        println!("== {name} (tag 0.8 m from excitation source, {n} packets/point) ==");
        println!(
            "{:9} {:>6} {:>10} {:>10} {:>9}",
            "protocol", "d m", "RSSI dBm", "delivery", "tag BER"
        );
        for p in Protocol::ALL {
            let link = AnyLink::new(p, Mode::Mode1);
            for d in [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0] {
                let geo = if nlos { Geometry::nlos(d) } else { Geometry::los(d) };
                let mut delivered = 0usize;
                let mut err = 0usize;
                let mut bits = 0usize;
                for _ in 0..n {
                    let out = run_packet(&mut rng, &link, &geo, Mode::Mode1, 16);
                    if out.decoded {
                        delivered += 1;
                        err += out.tag_errors;
                        bits += out.tag_bits;
                    }
                }
                let ber = if bits > 0 { err as f64 / bits as f64 } else { f64::NAN };
                println!(
                    "{:9} {:6.1} {:10.1} {:9.0}% {:8.1}%",
                    p.label(),
                    d,
                    geo.rssi_dbm(p),
                    delivered as f64 / n as f64 * 100.0,
                    ber * 100.0
                );
            }
        }
        println!();
    }
    println!("paper reference: LoS ranges 28 m (WiFi) / 22 m (ZigBee) / 20 m (BLE); NLoS 22 / 18 / 16 m.");
}
