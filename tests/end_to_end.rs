//! Cross-crate integration: the full excitation → tag → channel →
//! receiver loop for every protocol, with noise and fading in the loop.

use multiscatter::prelude::*;
use multiscatter::sim::pipeline::{run_packet, AnyLink, Geometry};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn close_range_loop_is_error_free_for_all_protocols() {
    let mut rng = StdRng::seed_from_u64(2020);
    for p in Protocol::ALL {
        let link = AnyLink::new(p, Mode::Mode1);
        for trial in 0..3 {
            let out = run_packet(&mut rng, &link, &Geometry::los(3.0), Mode::Mode1, 16);
            assert!(out.decoded, "{p} trial {trial}: packet lost at 3 m");
            assert_eq!(out.tag_errors, 0, "{p} trial {trial}: tag errors at 3 m");
            assert_eq!(out.productive_errors, 0, "{p} trial {trial}: productive errors");
        }
    }
}

#[test]
fn mode2_triples_tag_capacity() {
    let mut rng = StdRng::seed_from_u64(2021);
    for p in Protocol::ALL {
        let l1 = AnyLink::new(p, Mode::Mode1);
        let l2 = AnyLink::new(p, Mode::Mode2);
        assert_eq!(l2.tag_capacity(16) * 2, l1.tag_capacity(16) * 6);
        // Mode 2 still round-trips cleanly at close range.
        let out = run_packet(&mut rng, &l2, &Geometry::los(3.0), Mode::Mode2, 16);
        assert!(out.decoded && out.tag_errors == 0, "{p} mode-2 loop failed");
    }
}

#[test]
fn mode3_extreme_tradeoff_round_trips() {
    // Mode 3: one reference for the whole payload — productive data
    // shrinks to a single unit per packet, tag data fills the rest.
    let mut rng = StdRng::seed_from_u64(2024);
    for p in Protocol::ALL {
        let mode = Mode::Mode3 { n: 8 };
        let link = AnyLink::new(p, mode);
        // One productive unit per sequence: use 2 sequences.
        let out = run_packet(&mut rng, &link, &Geometry::los(3.0), mode, 2);
        assert!(out.decoded, "{p} mode-3 packet lost");
        assert_eq!(out.tag_errors, 0, "{p} mode-3 tag errors");
        // Mode 3 carries n−1 = 7 tag bits per productive unit.
        assert_eq!(out.tag_bits, 14, "{p} capacity");
    }
}

#[test]
fn distance_monotonically_degrades_the_link() {
    let mut rng = StdRng::seed_from_u64(2022);
    let link = AnyLink::new(Protocol::Ble, Mode::Mode1);
    let ber_at = |rng: &mut StdRng, d: f64| -> f64 {
        let mut total = 0.0;
        let n = 6;
        for _ in 0..n {
            total += run_packet(rng, &link, &Geometry::los(d), Mode::Mode1, 12).tag_ber();
        }
        total / n as f64
    };
    let near = ber_at(&mut rng, 3.0);
    let far = ber_at(&mut rng, 40.0);
    assert!(near < 0.05, "near BER {near}");
    assert!(far > 0.2, "far BER {far}");
}

#[test]
fn tag_rides_any_identified_carrier_and_single_protocol_tag_idles() {
    let mut rng = StdRng::seed_from_u64(2023);
    let mut multi = MultiscatterTag::new(SampleRate::ADC_FULL, Mode::Mode1);
    let mut single =
        MultiscatterTag::new(SampleRate::ADC_FULL, Mode::Mode1).single_protocol(Protocol::WifiB);
    let mut multi_tx = 0;
    let mut single_tx = 0;
    for (i, p) in Protocol::ALL.iter().enumerate() {
        let wave = multiscatter::sim::idtraces::random_packet(*p, &mut rng);
        let t = i as f64 * 0.01;
        if multi.process(&mut rng, &wave, -6.0, t, &[1, 0]).backscatter.is_some() {
            multi_tx += 1;
        }
        if single.process(&mut rng, &wave, -6.0, t, &[1, 0]).backscatter.is_some() {
            single_tx += 1;
        }
    }
    assert_eq!(multi_tx, 4, "multiscatter must ride every carrier");
    assert_eq!(single_tx, 1, "single-protocol tag must idle on foreign carriers");
}
