//! Integration tests of the identification stack: templates, matching,
//! the ordered-rule search, and robustness to the paper's parameter
//! sweeps (sampling rate, quantization, window extension).

use multiscatter::core::search::{
    blind_accuracy, collect_scores, default_grid, rule_accuracy, search_ordered_rule,
};
use multiscatter::prelude::*;
use multiscatter::sim::idtraces::{front_end, generate_traces};

fn tuples(fe: &FrontEnd, n: usize, seed: u64) -> Vec<(Protocol, Vec<f64>, isize)> {
    generate_traces(fe, n, seed).into_iter().map(|t| (t.truth, t.acquired, t.jitter)).collect()
}

#[test]
fn full_rate_identification_is_near_perfect() {
    let fe = front_end(SampleRate::ADC_FULL);
    let bank = TemplateBank::build(&fe, TemplateConfig::full_rate());
    let m = Matcher::new(bank, MatchMode::FullPrecision);
    let scores = collect_scores(&m, &tuples(&fe, 12, 3));
    let acc = blind_accuracy(&scores);
    assert!(acc > 0.95, "20 Msps full-precision accuracy {acc}");
}

#[test]
fn quantization_keeps_accuracy_at_10msps() {
    let fe = front_end(SampleRate::ADC_HALF);
    let bank = TemplateBank::build(&fe, TemplateConfig::standard(SampleRate::ADC_HALF));
    let m = Matcher::new(bank, MatchMode::Quantized);
    let train = collect_scores(&m, &tuples(&fe, 12, 5));
    let result = search_ordered_rule(&train, &default_grid());
    let test = collect_scores(&m, &tuples(&fe, 12, 6));
    let acc = rule_accuracy(&result.rule, &test);
    assert!(acc > 0.85, "10 Msps quantized ordered accuracy {acc}");
}

#[test]
fn window_extension_beats_short_window_at_low_rate() {
    let rate = SampleRate::ADC_LOW;
    let fe = front_end(rate);
    let run = |cfg: TemplateConfig| -> f64 {
        let bank = TemplateBank::build(&fe, cfg);
        let m = Matcher::new(bank, MatchMode::Quantized);
        let train = collect_scores(&m, &tuples(&fe, 10, 7));
        let rule = search_ordered_rule(&train, &default_grid()).rule;
        let test = collect_scores(&m, &tuples(&fe, 10, 8));
        rule_accuracy(&rule, &test)
    };
    let short = run(TemplateConfig::standard(rate));
    let extended = run(TemplateConfig::extended(rate));
    assert!(extended >= short, "extension must not lose: short {short} vs extended {extended}");
    assert!(extended > 0.85, "extended accuracy {extended}");
}

#[test]
fn template_storage_fits_the_agln250() {
    // §2.3 note 2: templates cost ~1% of the 36 kb storage.
    let rate = SampleRate::ADC_LOW;
    let fe = front_end(rate);
    let bank = TemplateBank::build(&fe, TemplateConfig::extended(rate));
    assert!(bank.storage_bits() <= 400);
    assert!((bank.storage_bits() as f64) < 0.02 * 36_000.0);
}

#[test]
fn searched_rule_never_loses_to_blind_on_training_data() {
    for rate in [SampleRate::ADC_HALF, SampleRate::ADC_LOW] {
        let fe = front_end(rate);
        let bank = TemplateBank::build(&fe, TemplateConfig::standard(rate));
        let m = Matcher::new(bank, MatchMode::Quantized);
        let data = collect_scores(&m, &tuples(&fe, 10, 9));
        let result = search_ordered_rule(&data, &default_grid());
        assert!(
            result.accuracy >= result.blind_accuracy,
            "{rate:?}: ordered {} < blind {}",
            result.accuracy,
            result.blind_accuracy
        );
    }
}
