//! Property-based tests of the PHY substrates: arbitrary payloads must
//! round-trip through every modulator/demodulator pair, and the coding
//! layers must be exact inverses.

use multiscatter::phy::ble::{BleConfig, BleDemodulator, BleModulator};
use multiscatter::phy::conv::{encode, viterbi_decode};
use multiscatter::phy::crc::Crc;
use multiscatter::phy::scramble::{scramble_11a, Scrambler11b, Whitener};
use multiscatter::phy::wifi_b::{WifiBConfig, WifiBDemodulator, WifiBModulator};
use multiscatter::phy::wifi_n::{Mcs, WifiNConfig, WifiNDemodulator, WifiNModulator};
use multiscatter::phy::zigbee::{ZigBeeConfig, ZigBeeDemodulator, ZigBeeModulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn wifi_b_roundtrip_any_payload(bits in proptest::collection::vec(0u8..=1, 8..120)) {
        let cfg = WifiBConfig::default();
        let mut padded = bits.clone();
        while padded.len() % cfg.rate.bits_per_symbol() != 0 { padded.push(0); }
        let tx = WifiBModulator::new(cfg.clone()).modulate(&padded);
        let rx = WifiBDemodulator::new(cfg).demodulate(&tx).unwrap();
        prop_assert_eq!(&rx.psdu_bits[..padded.len()], &padded[..]);
        prop_assert!(rx.header_crc_ok);
    }

    #[test]
    fn wifi_n_roundtrip_any_payload_any_mcs(
        bits in proptest::collection::vec(0u8..=1, 24..200),
        mcs_sel in 0usize..3,
    ) {
        let mcs = [Mcs::Mcs0, Mcs::Mcs1, Mcs::Mcs3][mcs_sel];
        let tx = WifiNModulator::new(WifiNConfig { mcs }).modulate(&bits);
        let rx = WifiNDemodulator::new().demodulate(&tx).unwrap();
        prop_assert_eq!(rx.psdu_bits, bits);
        prop_assert_eq!(rx.mcs, mcs);
    }

    #[test]
    fn ble_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 1..37)) {
        let cfg = BleConfig::default();
        let tx = BleModulator::new(cfg.clone()).modulate(0x02, &payload);
        let rx = BleDemodulator::new(cfg).demodulate(&tx).unwrap();
        prop_assert!(rx.crc_ok);
        prop_assert_eq!(&rx.pdu[2..], &payload[..]);
    }

    #[test]
    fn zigbee_roundtrip_any_payload(psdu in proptest::collection::vec(any::<u8>(), 1..80)) {
        let cfg = ZigBeeConfig::default();
        let tx = ZigBeeModulator::new(cfg).modulate(&psdu);
        let rx = ZigBeeDemodulator::new(cfg).demodulate(&tx).unwrap();
        prop_assert!(rx.fcs_ok);
        prop_assert_eq!(rx.psdu, psdu);
    }

    #[test]
    fn scramblers_invert(bits in proptest::collection::vec(0u8..=1, 1..300), seed in 1u8..128) {
        let mut s = Scrambler11b::with_seed(seed);
        let scrambled = s.scramble(&bits);
        let mut d = Scrambler11b::with_seed(seed);
        prop_assert_eq!(d.descramble(&scrambled), bits.clone());

        let a = scramble_11a(&bits, seed);
        prop_assert_eq!(scramble_11a(&a, seed), bits.clone());

        let channel = seed % 40;
        let w = Whitener::for_channel(channel).apply(&bits);
        prop_assert_eq!(Whitener::for_channel(channel).apply(&w), bits);
    }

    #[test]
    fn viterbi_inverts_encoder(bits in proptest::collection::vec(0u8..=1, 1..200)) {
        let mut padded = bits.clone();
        padded.extend_from_slice(&[0; 6]); // tail
        prop_assert_eq!(viterbi_decode(&encode(&padded)), padded);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..40),
        flip_byte_sel in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        for crc in [Crc::ccitt_ffff(), Crc::ieee802154(), Crc::ble_adv(), Crc::ieee80211()] {
            let base = crc.compute(&data);
            let mut corrupted = data.clone();
            let idx = flip_byte_sel.index(corrupted.len());
            corrupted[idx] ^= 1 << flip_bit;
            prop_assert_ne!(crc.compute(&corrupted), base);
        }
    }
}
