//! Property-based tests of the channel substrate: link-budget
//! monotonicity and model invariants the experiments depend on.

use multiscatter::channel::pathloss::{free_space_db, LogDistance, F_2G4};
use multiscatter::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn path_loss_is_monotonic(d1 in 0.5f64..100.0, delta in 0.1f64..50.0) {
        prop_assert!(free_space_db(d1 + delta, F_2G4) > free_space_db(d1, F_2G4));
        for model in [LogDistance::los_2g4(), LogDistance::nlos_2g4()] {
            prop_assert!(model.loss_db(d1 + delta) > model.loss_db(d1));
        }
    }

    #[test]
    fn nlos_never_beats_los(d in 1.0f64..60.0) {
        prop_assert!(LogDistance::nlos_2g4().loss_db(d) >= LogDistance::los_2g4().loss_db(d) - 1e-9);
    }

    #[test]
    fn backscatter_budget_monotonic_in_both_hops(
        d1 in 0.3f64..3.0,
        d2 in 1.0f64..40.0,
        e1 in 0.05f64..1.0,
        e2 in 0.5f64..10.0,
    ) {
        let lb = LinkBudget::paper_los();
        prop_assert!(lb.backscattered_rx_dbm(d1, d2) > lb.backscattered_rx_dbm(d1 + e1, d2));
        prop_assert!(lb.backscattered_rx_dbm(d1, d2) > lb.backscattered_rx_dbm(d1, d2 + e2));
    }

    #[test]
    fn occlusion_only_subtracts(d in 1.0f64..40.0) {
        let mut lb = LinkBudget::paper_los();
        let base = lb.backscattered_rx_dbm(0.8, d);
        for occ in [Occlusion::Drywall, Occlusion::WoodenWall, Occlusion::ConcreteWall] {
            lb.occlusion = occ;
            let v = lb.backscattered_rx_dbm(0.8, d);
            prop_assert!((base - v - occ.loss_db()).abs() < 1e-9);
        }
    }

    #[test]
    fn fading_has_unit_mean_power_for_any_k(k in 0.1f64..50.0, seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let f = Fading::Rician { k };
        let n = 20_000;
        let p: f64 = (0..n).map(|_| f.sample(&mut rng).norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((p - 1.0).abs() < 0.06, "mean power {p} for K={k}");
    }

    #[test]
    fn snr_and_rssi_agree(d in 2.0f64..30.0, bw in 1e6f64..20e6) {
        // SNR must equal RSSI minus the noise floor, exactly.
        let lb = LinkBudget::paper_los();
        let rssi = lb.backscattered_rx_dbm(0.8, d);
        let snr = lb.backscatter_snr_db(0.8, d, bw);
        let floor = multiscatter::channel::awgn::noise_floor_dbm(bw, lb.rx_nf_db);
        prop_assert!((snr - (rssi - floor)).abs() < 1e-9);
    }
}
