//! Property-based tests of the DSP substrate: the algebraic identities
//! the modems silently rely on.

use multiscatter::dsp::corr::{normalized_corr, quantized_corr_norm, sign_quantize};
use multiscatter::dsp::fft::dft;
use multiscatter::dsp::{Complex64, Fft, Fir};
use proptest::prelude::*;

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Complex64::new(re, im)),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fft_matches_dft(v in complex_vec(32)) {
        let fft = Fft::new(32);
        let got = fft.forward_to_vec(&v);
        let want = dft(&v);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_is_linear(a in complex_vec(16), b in complex_vec(16), k in -3.0f64..3.0) {
        let fft = Fft::new(16);
        let fa = fft.forward_to_vec(&a);
        let fb = fft.forward_to_vec(&b);
        let combined: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x.scale(k) + y).collect();
        let fc = fft.forward_to_vec(&combined);
        for i in 0..16 {
            prop_assert!((fc[i] - (fa[i].scale(k) + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_inverse_is_exact_round_trip(v in complex_vec(64)) {
        let fft = Fft::new(64);
        let round = fft.inverse_to_vec(&fft.forward_to_vec(&v));
        for (r, x) in round.iter().zip(&v) {
            prop_assert!((*r - *x).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds(v in complex_vec(64)) {
        let fft = Fft::new(64);
        let time: f64 = v.iter().map(|s| s.norm_sqr()).sum();
        let freq: f64 = fft.forward_to_vec(&v).iter().map(|s| s.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-9 * (1.0 + time));
    }

    #[test]
    fn fir_is_linear_and_time_invariant(
        sig in complex_vec(64),
        k in 0.1f64..3.0,
        shift in 1usize..8,
    ) {
        let f = Fir::lowpass(0.2, 15);
        // Linearity.
        let scaled: Vec<Complex64> = sig.iter().map(|&s| s.scale(k)).collect();
        let y1 = f.convolve(&scaled);
        let y2: Vec<Complex64> = f.convolve(&sig).iter().map(|&s| s.scale(k)).collect();
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
        // Time invariance: shifting input shifts output.
        let mut shifted = vec![Complex64::ZERO; shift];
        shifted.extend_from_slice(&sig);
        let ys = f.convolve(&shifted);
        let y = f.convolve(&sig);
        for i in 0..y.len() {
            prop_assert!((ys[i + shift] - y[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_is_bounded_and_symmetric(
        a in proptest::collection::vec(-5.0f64..5.0, 16),
        b in proptest::collection::vec(-5.0f64..5.0, 16),
    ) {
        let c = normalized_corr(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        prop_assert!((c - normalized_corr(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn quantized_self_correlation_is_one(sig in proptest::collection::vec(-2.0f64..2.0, 8..64)) {
        let dc = sig.iter().sum::<f64>() / sig.len() as f64;
        let q = sign_quantize(&sig, dc);
        prop_assert!((quantized_corr_norm(&q, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn freq_shift_preserves_power(v in complex_vec(128), df in -5e6f64..5e6) {
        use multiscatter::dsp::{IqBuf, SampleRate};
        let buf = IqBuf::new(v, SampleRate::mhz(20.0));
        let shifted = buf.freq_shift(df);
        prop_assert!((shifted.mean_power() - buf.mean_power()).abs() < 1e-9 * (1.0 + buf.mean_power()));
    }
}
