//! Property-based tests of the overlay-modulation invariants: for any
//! valid (κ, γ) and any productive/tag payloads, the single-receiver
//! decode recovers both streams exactly on a clean channel.

use multiscatter::core::overlay::{OverlayParams, TagOverlayModulator};
use multiscatter::core::tag::payload_start_seconds;
use multiscatter::prelude::*;
use multiscatter::rx::WifiNOverlayLink;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = OverlayParams> {
    // γ ∈ {2, 4}; κ/γ ∈ {2, 3, 4}.
    (prop_oneof![Just(2usize), Just(4usize)], 2usize..=4)
        .prop_map(|(gamma, blocks)| OverlayParams::new(gamma * blocks, gamma))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wifi_b_overlay_round_trip(
        params in params_strategy(),
        productive in proptest::collection::vec(0u8..=1, 4..12),
        seed in 0u64..1000,
    ) {
        let link = WifiBOverlayLink::new(params);
        let carrier = link.make_carrier(&productive);
        let cap = link.tag_capacity(productive.len());
        let mut rng_state = seed;
        let tag_bits: Vec<u8> = (0..cap).map(|_| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) & 1) as u8
        }).collect();
        let tag = TagOverlayModulator::new(Protocol::WifiB, params);
        let start = (payload_start_seconds(Protocol::WifiB) * carrier.rate().as_hz()).round() as usize;
        let modulated = tag.modulate(&carrier, start, &tag_bits);
        let decoded = link.decode(&modulated).unwrap();
        prop_assert_eq!(decoded.productive, productive);
        prop_assert_eq!(decoded.tag, tag_bits);
    }

    #[test]
    fn ble_overlay_round_trip(
        params in params_strategy(),
        productive in proptest::collection::vec(0u8..=1, 4..12),
    ) {
        let link = BleOverlayLink::new(params);
        let carrier = link.make_carrier(&productive);
        let cap = link.tag_capacity(productive.len());
        let tag_bits: Vec<u8> = (0..cap).map(|i| ((i * 7 + 3) % 2) as u8).collect();
        let tag = TagOverlayModulator::new(Protocol::Ble, params);
        let start = (payload_start_seconds(Protocol::Ble) * carrier.rate().as_hz()).round() as usize;
        let modulated = tag.modulate(&carrier, start, &tag_bits);
        let decoded = link.decode(&modulated, productive.len()).unwrap();
        prop_assert_eq!(decoded.productive, productive);
        prop_assert_eq!(decoded.tag, tag_bits);
    }

    #[test]
    fn zigbee_overlay_round_trip(
        params in params_strategy(),
        productive in proptest::collection::vec(0u8..16, 4..10),
    ) {
        // Keep total payload symbols even (nibble packing) — κ·len is
        // even because κ is even.
        let link = ZigBeeOverlayLink::new(params);
        let carrier = link.make_carrier(&productive);
        let cap = link.tag_capacity(productive.len());
        let tag_bits: Vec<u8> = (0..cap).map(|i| (i % 2) as u8).collect();
        let tag = TagOverlayModulator::new(Protocol::ZigBee, params);
        let start = (payload_start_seconds(Protocol::ZigBee) * carrier.rate().as_hz()).round() as usize;
        let modulated = tag.modulate(&carrier, start, &tag_bits);
        let decoded = link.decode(&modulated).unwrap();
        prop_assert_eq!(decoded.productive, productive);
        prop_assert_eq!(decoded.tag, tag_bits);
    }

    #[test]
    fn wifi_n_overlay_round_trip(
        params in params_strategy(),
        productive in proptest::collection::vec(0u8..=1, 2..8),
        mcs_sel in 0usize..3,
    ) {
        use multiscatter::phy::wifi_n::Mcs;
        let mcs = [Mcs::Mcs0, Mcs::Mcs1, Mcs::Mcs3][mcs_sel];
        let link = WifiNOverlayLink::new(params).with_mcs(mcs);
        let carrier = link.make_carrier(&productive);
        let cap = link.tag_capacity(productive.len());
        let tag_bits: Vec<u8> = (0..cap).map(|i| ((i * 5 + 1) % 2) as u8).collect();
        let tag = TagOverlayModulator::new(Protocol::WifiN, params);
        let start = (payload_start_seconds(Protocol::WifiN) * carrier.rate().as_hz()).round() as usize;
        let modulated = tag.modulate(&carrier, start, &tag_bits);
        let decoded = link.decode(&modulated).unwrap();
        prop_assert_eq!(decoded.productive, productive);
        prop_assert_eq!(decoded.tag, tag_bits);
    }

    #[test]
    fn capacity_accounting_is_consistent(params in params_strategy(), n in 1usize..40) {
        // tag bits per sequence × sequences == capacity reported by the
        // modulator for whole-sequence payloads.
        let tag = TagOverlayModulator::new(Protocol::WifiN, params);
        let n_symbols = n * params.kappa;
        prop_assert_eq!(tag.capacity(n_symbols), n * params.tag_bits_per_sequence());
        // Partial sequences carry nothing extra.
        prop_assert_eq!(tag.capacity(n_symbols + params.kappa - 1), n * params.tag_bits_per_sequence());
    }

    #[test]
    fn modulation_preserves_power(params in params_strategy(), bits in proptest::collection::vec(0u8..=1, 1..8)) {
        // PSK/FSK tag modulation is unit-modulus: the backscattered
        // waveform has exactly the carrier's power.
        let carrier = IqBuf::new(vec![Complex64::new(0.6, 0.2); 4 * 80 * 16], SampleRate::mhz(20.0));
        let tag = TagOverlayModulator::new(Protocol::WifiN, params);
        let out = tag.modulate(&carrier, 0, &bits);
        prop_assert!((out.mean_power() - carrier.mean_power()).abs() < 1e-12);
    }
}
